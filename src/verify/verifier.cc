#include "verify/verifier.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "common/sim_error.hh"
#include "isa/builder.hh"
#include "verify/cfg.hh"
#include "verify/memdep.hh"

namespace si {

namespace {

std::string
pcRef(const Program &prog, std::uint32_t pc)
{
    const std::uint32_t line = prog.sourceLine(pc);
    if (line != 0)
        return "line " + std::to_string(line);
    return "pc " + std::to_string(pc);
}

// ---- abstract state ------------------------------------------------------
//
// Joint lattice for both dataflow analyses, one value per basic block
// (the IN state). Sets grow and booleans saturate monotonically, so the
// round-robin sweep below reaches a fixpoint.

struct AbsState
{
    bool reachable = false;

    /** Per scoreboard: static pcs of &wr sites that may still be
     *  outstanding (no &req consumed them on this path). */
    std::vector<std::set<std::uint32_t>> sbPending;

    /** Bit k: some path to here contains at least one &wr=sbk. */
    std::uint32_t sbMayWritten = 0;

    /** Bit k: some path to here contains no &wr=sbk at all. */
    std::uint32_t sbMayNever = 0;

    /** Per barrier register: static pcs of BSSYs that may have armed it
     *  with no BSYNC since. */
    std::vector<std::set<std::uint32_t>> barArmed;

    /** Bit b: some path to here has barrier b unarmed. */
    std::uint32_t barMayUnarmed = 0;

    AbsState(unsigned num_sb, unsigned num_bar)
        : sbPending(num_sb), barArmed(num_bar)
    {
    }

    /** Union-join @p other into *this; true when *this changed. */
    bool
    join(const AbsState &other)
    {
        bool changed = !reachable;
        reachable = true;
        for (std::size_t k = 0; k < sbPending.size(); ++k) {
            for (std::uint32_t pc : other.sbPending[k])
                changed |= sbPending[k].insert(pc).second;
        }
        for (std::size_t b = 0; b < barArmed.size(); ++b) {
            for (std::uint32_t pc : other.barArmed[b])
                changed |= barArmed[b].insert(pc).second;
        }
        auto or_into = [&](std::uint32_t &dst, std::uint32_t src) {
            changed |= (dst | src) != dst;
            dst |= src;
        };
        or_into(sbMayWritten, other.sbMayWritten);
        or_into(sbMayNever, other.sbMayNever);
        or_into(barMayUnarmed, other.barMayUnarmed);
        return changed;
    }
};

class Verifier
{
  public:
    Verifier(const Program &prog, const VerifyOptions &opts)
        : prog_(prog), opts_(opts)
    {
    }

    VerifyReport
    run()
    {
        if (boundsPass())
            finish();
        return std::move(report_);
    }

  private:
    void
    diag(Severity sev, const char *code, std::uint32_t pc,
         std::string message)
    {
        if (sev == Severity::Note && !opts_.notes)
            return;
        report_.diags.push_back({sev, code, pc, std::move(message)});
    }

    // ---- pass 1: index bounds and structural shape ----------------------
    //
    // Returns false when the program is too malformed for CFG
    // construction (out-of-range targets / barrier / scoreboard ids
    // would index out of the analysis arrays).

    bool
    boundsPass()
    {
        if (prog_.size() == 0) {
            diag(Severity::Error, "empty-program", 0, "program is empty");
            return false;
        }
        if (prog_.numRegs() == 0 || prog_.numRegs() > 255) {
            diag(Severity::Error, "bad-reg-count", 0,
                 "register count " + std::to_string(prog_.numRegs()) +
                     " outside 1..255");
        }

        bool cfg_safe = true;
        bool has_exit = false;
        for (std::uint32_t pc = 0; pc < prog_.size(); ++pc) {
            const Instr &in = prog_.at(pc);
            has_exit |= in.op == Opcode::EXIT;

            if ((in.op == Opcode::BRA || in.op == Opcode::BSSY) &&
                in.target >= prog_.size()) {
                diag(Severity::Error, "target-oob", pc,
                     "branch target " + std::to_string(in.target) +
                         " outside the program");
                cfg_safe = false;
            }
            if ((in.op == Opcode::BSSY || in.op == Opcode::BSYNC) &&
                in.bar >= opts_.numBarriers) {
                diag(Severity::Error, "bad-bar-index", pc,
                     "barrier register B" + std::to_string(in.bar) +
                         " exceeds the " +
                         std::to_string(opts_.numBarriers) +
                         " modeled registers");
                cfg_safe = false;
            }
            if (in.wrSb != sbNone && in.wrSb >= opts_.numScoreboards) {
                diag(Severity::Error, "bad-sb-index", pc,
                     "&wr=sb" + std::to_string(in.wrSb) + " exceeds the " +
                         std::to_string(opts_.numScoreboards) +
                         " modeled scoreboards");
                cfg_safe = false;
            }
            const std::uint32_t req_hi =
                std::uint32_t(in.reqSbMask) >> opts_.numScoreboards;
            if (req_hi != 0) {
                diag(Severity::Error, "bad-sb-index", pc,
                     "&req names a scoreboard past sb" +
                         std::to_string(opts_.numScoreboards - 1));
                cfg_safe = false;
            }
            if (in.wrSb != sbNone && !isLongLatency(in.op)) {
                diag(Severity::Error, "wr-on-short-op", pc,
                     "&wr=sb" + std::to_string(in.wrSb) +
                         " on fixed-latency opcode " +
                         opcodeName(in.op) +
                         " (no scoreboarded writeback will release it)");
            }

            auto check_reg = [&](RegIndex r, const char *role) {
                if (r != regNone && r >= prog_.numRegs()) {
                    diag(Severity::Error, "bad-reg-index", pc,
                         std::string(role) + " register R" +
                             std::to_string(r) + " exceeds .regs " +
                             std::to_string(prog_.numRegs()));
                }
            };
            check_reg(in.dst, "destination");
            check_reg(in.srcA, "source");
            if (!in.bImm)
                check_reg(in.srcB, "source");
            check_reg(in.srcC, "source");

            auto check_pred = [&](PredIndex p, const char *role) {
                if (p != predNone && p > 6) {
                    diag(Severity::Error, "bad-pred-index", pc,
                         std::string(role) + " predicate P" +
                             std::to_string(p) +
                             " outside P0..P6 (P7 is PT)");
                }
            };
            check_pred(in.guard, "guard");
            check_pred(in.pdst, "destination");

            if ((in.op == Opcode::ISETP || in.op == Opcode::FSETP) &&
                in.pdst == predNone) {
                diag(Severity::Warning, "setp-writes-pt", pc,
                     "comparison writes PT; the result is discarded");
            }

            if (pc + 1 == prog_.size() && in.op != Opcode::EXIT &&
                !(in.op == Opcode::BRA && in.guard == predNone)) {
                diag(Severity::Error, "bad-last-instr", pc,
                     "program can fall off the end: last instruction is "
                     "neither EXIT nor an unconditional BRA");
            }
        }
        if (!has_exit) {
            diag(Severity::Error, "no-exit", 0,
                 "program contains no EXIT");
        }
        return cfg_safe;
    }

    // ---- pass 2: dataflow over the CFG ----------------------------------

    /** Abstract transfer of one instruction. @p emit enables
     *  diagnostics (the final walk); the fixpoint sweeps pass false. */
    void
    transfer(const Instr &in, std::uint32_t pc, AbsState &st, bool emit)
    {
        // &req first: issue waits for the counters to read zero before
        // the instruction's own &wr increments anything.
        for (unsigned k = 0; k < opts_.numScoreboards; ++k) {
            if (!(in.reqSbMask & (1u << k)))
                continue;
            if (emit) {
                if (!(st.sbMayWritten & (1u << k))) {
                    diag(Severity::Warning, "sb-wait-never-written", pc,
                         "&req=sb" + std::to_string(k) + " but no &wr=sb" +
                             std::to_string(k) +
                             " reaches on any path — the wait is a no-op");
                } else if (st.sbMayNever & (1u << k)) {
                    diag(Severity::Note, "sb-wait-partial", pc,
                         "&req=sb" + std::to_string(k) + " but &wr=sb" +
                             std::to_string(k) +
                             " reaches on some paths only");
                }
            }
            st.sbPending[k].clear();
        }

        if (in.wrSb != sbNone) {
            const unsigned k = in.wrSb;
            if (emit) {
                for (std::uint32_t other : st.sbPending[k]) {
                    if (other == pc)
                        continue;
                    diag(Severity::Warning, "sb-rewrite-in-flight", pc,
                         "&wr=sb" + std::to_string(k) +
                             " while the write from " +
                             pcRef(prog_, other) +
                             " may still be in flight with no "
                             "intervening &req — two producers alias one "
                             "counter");
                    break;
                }
            }
            st.sbPending[k].insert(pc);
            st.sbMayWritten |= 1u << k;
            st.sbMayNever &= ~(1u << k);
        }

        if (in.op == Opcode::BSSY) {
            const unsigned b = in.bar;
            if (emit) {
                bool rearmed_other = false;
                for (std::uint32_t other : st.barArmed[b]) {
                    if (other == pc)
                        continue;
                    diag(Severity::Error, "bar-rearm-live", pc,
                         "BSSY B" + std::to_string(b) +
                             " while the region opened at " +
                             pcRef(prog_, other) +
                             " may still be live — the two masks merge "
                             "into one bogus barrier");
                    flaggedPairs_.insert(pcPair(pc, other));
                    rearmed_other = true;
                    break;
                }
                if (!rearmed_other && st.barArmed[b].count(pc)) {
                    diag(Severity::Warning, "bar-rearm-loop", pc,
                         "BSSY B" + std::to_string(b) +
                             " can re-execute before its BSYNC (loop "
                             "path) — lanes re-register while others may "
                             "be blocked");
                }
            }
            st.barArmed[b].insert(pc);
            st.barMayUnarmed &= ~(1u << b);
        } else if (in.op == Opcode::BSYNC) {
            const unsigned b = in.bar;
            if (emit) {
                if (st.barArmed[b].empty()) {
                    diag(Severity::Warning, "bsync-before-bssy", pc,
                         "BSYNC B" + std::to_string(b) +
                             " with no reaching BSSY on any path — the "
                             "barrier is empty and the sync is a no-op");
                } else if (st.barMayUnarmed & (1u << b)) {
                    diag(Severity::Warning, "bsync-partial", pc,
                         "lanes can reach BSYNC B" + std::to_string(b) +
                             " without passing its BSSY — they slip "
                             "through unsynchronized");
                }
            }
            st.barArmed[b].clear();
            st.barMayUnarmed |= 1u << b;
        }
    }

    static std::pair<std::uint32_t, std::uint32_t>
    pcPair(std::uint32_t a, std::uint32_t b)
    {
        return {std::min(a, b), std::max(a, b)};
    }

    void
    dataflow(const Cfg &cfg)
    {
        AbsState entry(opts_.numScoreboards, opts_.numBarriers);
        entry.reachable = true;
        entry.sbMayNever = (1u << opts_.numScoreboards) - 1u;
        entry.barMayUnarmed = (1u << opts_.numBarriers) - 1u;

        std::vector<AbsState> in(
            cfg.numBlocks(),
            AbsState(opts_.numScoreboards, opts_.numBarriers));
        in[0] = entry;

        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t id : cfg.rpo()) {
                if (!in[id].reachable)
                    continue;
                AbsState out = in[id];
                const CfgBlock &b = cfg.block(id);
                for (std::uint32_t pc = b.first; pc < b.end; ++pc)
                    transfer(prog_.at(pc), pc, out, false);
                for (std::uint32_t s : b.succs)
                    changed |= in[s].join(out);
            }
        }

        // Final walk: re-run the transfer from each converged IN state,
        // now emitting diagnostics (blocks in pc order for stable
        // output).
        for (std::uint32_t id = 0; id < cfg.numBlocks(); ++id) {
            if (!in[id].reachable)
                continue;
            AbsState st = in[id];
            const CfgBlock &b = cfg.block(id);
            for (std::uint32_t pc = b.first; pc < b.end; ++pc)
                transfer(prog_.at(pc), pc, st, true);
        }
    }

    // ---- pass 3: structural barrier / CFG checks ------------------------

    void
    structural(const Cfg &cfg)
    {
        const std::vector<std::uint32_t> idom = cfg.immediateDominators();

        // Collect the static BSSY/BSYNC sites per barrier register.
        std::vector<std::vector<std::uint32_t>> bssys(opts_.numBarriers);
        std::vector<std::vector<std::uint32_t>> bsyncs(opts_.numBarriers);
        for (std::uint32_t pc = 0; pc < prog_.size(); ++pc) {
            const Instr &in = prog_.at(pc);
            if (in.op == Opcode::BSSY)
                bssys[in.bar].push_back(pc);
            else if (in.op == Opcode::BSYNC)
                bsyncs[in.bar].push_back(pc);
        }

        for (unsigned b = 0; b < opts_.numBarriers; ++b) {
            // Convergence-point hygiene and region closure per BSSY.
            for (std::uint32_t pc : bssys[b]) {
                const Instr &target = prog_.at(prog_.at(pc).target);
                if (target.op != Opcode::BSYNC || target.bar != b) {
                    diag(Severity::Warning, "bssy-target-not-bsync", pc,
                         "BSSY B" + std::to_string(b) +
                             " names a convergence point (" +
                             pcRef(prog_, prog_.at(pc).target) +
                             ") that is not BSYNC B" + std::to_string(b));
                }
                bool closes = false;
                for (std::uint32_t s : bsyncs[b])
                    closes |= cfg.reaches(pc, s);
                if (!closes) {
                    diag(Severity::Error, "bar-no-sync", pc,
                         "no BSYNC B" + std::to_string(b) +
                             " is reachable from this BSSY — the region "
                             "never closes and any other subwarp's "
                             "BSYNC B" + std::to_string(b) +
                             " waits on it forever");
                }
            }

            // Reuse of one barrier register by several static BSSYs.
            // Safe-ish only when all lanes provably serialize through a
            // closing BSYNC between the two regions (dominator chain
            // BSSY1 -> BSYNC -> BSSY2). Anything else — notably sibling
            // regions on mutually exclusive divergent arms, the exact
            // bug class PR 2's oracle caught dynamically — can be
            // occupied by two subwarps of one warp concurrently, which
            // merges their masks.
            auto sequential = [&](std::uint32_t p, std::uint32_t q) {
                for (std::uint32_t s : bsyncs[b]) {
                    if (cfg.dominates(p, s, idom) &&
                        cfg.dominates(s, q, idom) && s != q) {
                        return true;
                    }
                }
                return false;
            };
            for (std::size_t i = 0; i < bssys[b].size(); ++i) {
                for (std::size_t j = i + 1; j < bssys[b].size(); ++j) {
                    const std::uint32_t p = bssys[b][i];
                    const std::uint32_t q = bssys[b][j];
                    if (flaggedPairs_.count(pcPair(p, q)))
                        continue; // dataflow already flagged the overlap
                    if (sequential(p, q) || sequential(q, p)) {
                        diag(Severity::Warning, "bar-reuse-sequential", q,
                             "barrier register B" + std::to_string(b) +
                                 " reused after the region from " +
                                 pcRef(prog_, p) +
                                 " closes — safe only while no subwarp "
                                 "roams ahead unsynchronized");
                    } else {
                        diag(Severity::Error, "bar-reuse-sibling", q,
                             "barrier register B" + std::to_string(b) +
                                 " also armed at " + pcRef(prog_, p) +
                                 " on an unordered or mutually exclusive "
                                 "path; two subwarps can occupy both "
                                 "regions concurrently and merge masks");
                    }
                }
            }
        }

        // Branch into a BSSY's shadow: a jump that lands between a BSSY
        // and the divergent branch it shields, from code the BSSY does
        // not dominate, enters the armed region without registering.
        for (std::uint32_t pc = 0; pc < prog_.size(); ++pc) {
            if (prog_.at(pc).op != Opcode::BSSY)
                continue;
            std::uint32_t shadow_end = pc + 1;
            while (shadow_end < prog_.size() &&
                   !prog_.at(shadow_end).isControl() &&
                   prog_.at(shadow_end).op != Opcode::BSSY) {
                ++shadow_end;
            }
            if (shadow_end >= prog_.size())
                continue;
            for (std::uint32_t j = 0; j < prog_.size(); ++j) {
                const Instr &br = prog_.at(j);
                if (br.op != Opcode::BRA)
                    continue;
                if (br.target > pc && br.target <= shadow_end &&
                    !cfg.dominates(pc, j, idom)) {
                    diag(Severity::Warning, "branch-into-bssy-shadow", j,
                         "branch target lands between the BSSY at " +
                             pcRef(prog_, pc) +
                             " and its divergent branch; entering lanes "
                             "skip barrier registration");
                }
            }
        }

        // Unreachable code and inescapable loops.
        for (std::uint32_t id = 0; id < cfg.numBlocks(); ++id) {
            if (!cfg.reachable(id)) {
                diag(Severity::Warning, "unreachable-code",
                     cfg.block(id).first, "instruction is unreachable");
            }
        }
        const std::vector<bool> exits = cfg.canReachExit(prog_);
        for (std::uint32_t id = 0; id < cfg.numBlocks(); ++id) {
            if (cfg.reachable(id) && !exits[id]) {
                diag(Severity::Error, "no-exit-path",
                     cfg.block(id).first,
                     "control reaching here can never reach an EXIT — "
                     "lanes trapped in this loop deadlock every barrier "
                     "waiting on them");
            }
        }
    }

    // ---- pass 4: subwarp memory-order hazards (verify/memdep) -----------
    //
    // A may-aliasing store/load or store/store pair on subwarp-concurrent
    // paths (sibling divergent arms, or distinct iterations of a
    // divergent loop) with no BSYNC ordering the two accesses: the
    // observed memory state depends on the subwarp schedule. Warning
    // severity — the baseline lockstep schedule executes such programs
    // deterministically, but any interleaving schedule (the paper's
    // feature) legally reorders them; silint --Werror promotes it.

    void
    memdepPass()
    {
        const MemDepResult dep = analyzeMemDep(prog_);
        for (const MayRacePair &p : dep.pairs) {
            const char *opA = opcodeName(prog_.at(p.pcA).op);
            const char *opB = opcodeName(prog_.at(p.pcB).op);
            std::string msg;
            if (p.pcA == p.pcB) {
                msg = std::string(opA) +
                      " may store to the same address on different "
                      "iterations of a divergent loop with no BSYNC "
                      "between them — the final value depends on subwarp "
                      "schedule";
            } else {
                msg = std::string(opB) + " and the " + opA + " at " +
                      pcRef(prog_, p.pcA) +
                      " may touch the same address from " +
                      (p.loopCarried
                           ? "different iterations of a divergent loop"
                           : "sibling divergent arms") +
                      " with no BSYNC ordering them — the " +
                      (p.storeStore ? "final value" : "observed value") +
                      " depends on subwarp schedule";
            }
            diag(Severity::Warning, "si-order-dependent", p.pcB,
                 std::move(msg));
        }
    }

    void
    finish()
    {
        const Cfg cfg = Cfg::build(prog_);
        dataflow(cfg);
        structural(cfg);
        memdepPass();
    }

    const Program &prog_;
    const VerifyOptions &opts_;
    VerifyReport report_;
    std::set<std::pair<std::uint32_t, std::uint32_t>> flaggedPairs_;
};

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "?";
}

unsigned
VerifyReport::errors() const
{
    unsigned n = 0;
    for (const VerifyDiag &d : diags)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

unsigned
VerifyReport::warnings() const
{
    unsigned n = 0;
    for (const VerifyDiag &d : diags)
        n += d.severity == Severity::Warning ? 1 : 0;
    return n;
}

unsigned
VerifyReport::notes() const
{
    unsigned n = 0;
    for (const VerifyDiag &d : diags)
        n += d.severity == Severity::Note ? 1 : 0;
    return n;
}

bool
VerifyReport::has(const char *code) const
{
    for (const VerifyDiag &d : diags) {
        if (std::string(d.code) == code)
            return true;
    }
    return false;
}

std::string
VerifyReport::render(const Program *program,
                     const std::string &filename) const
{
    std::string file = filename;
    if (file.empty())
        file = program ? program->name() : "<program>";

    std::vector<VerifyDiag> sorted = diags;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const VerifyDiag &a, const VerifyDiag &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         return a.severity < b.severity;
                     });

    std::string out;
    for (const VerifyDiag &d : sorted) {
        const std::uint32_t line =
            program ? program->sourceLine(d.pc) : 0;
        out += file + ":";
        out += line != 0 ? std::to_string(line)
                         : "pc " + std::to_string(d.pc);
        out += ": ";
        out += severityName(d.severity);
        out += ": " + d.message + " [" + d.code + "]\n";
    }
    return out;
}

VerifyReport
verifyProgram(const Program &program, const VerifyOptions &opts)
{
    return Verifier(program, opts).run();
}

void
verifyOrThrow(const Program &program, const VerifyOptions &opts)
{
    const VerifyReport report = verifyProgram(program, opts);
    if (!report.clean()) {
        throw SimError(ErrorKind::Parse,
                       "program '" + program.name() +
                           "' failed static verification:\n" +
                           report.render(&program));
    }
}

AsmResult
assembleVerified(const std::string &source, const VerifyOptions &opts)
{
    AsmResult res = assemble(source);
    if (!res.ok)
        return res;
    const VerifyReport report = verifyProgram(res.program, opts);
    if (!report.clean()) {
        res.ok = false;
        res.error = report.render(&res.program);
    }
    return res;
}

Program
buildVerified(KernelBuilder &builder, unsigned num_regs,
              const VerifyOptions &opts)
{
    Program prog = builder.build(num_regs);
    verifyOrThrow(prog, opts);
    return prog;
}

} // namespace si
