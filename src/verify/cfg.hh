/**
 * @file
 * Basic-block control-flow graph over isa::Program, built BRA/BSSY/
 * BSYNC/EXIT-aware. The static verifier (verify/verifier.hh) runs its
 * dataflow analyses over this graph; dominators drive the
 * barrier-register reuse check.
 *
 * Edge model (matches the per-thread-PC semantics of core/ and ref/):
 *   - BRA unguarded: the target only.
 *   - BRA guarded:   target + fall-through (divergence).
 *   - EXIT unguarded: no successor. Guarded EXIT falls through.
 *   - BSSY: fall-through only. Its target names the reconvergence
 *     point for bookkeeping, but the hardware never transfers control
 *     there — released lanes continue after their BSYNC.
 *   - BSYNC: fall-through (participants resume at pc+1 on release).
 */

#ifndef SI_VERIFY_CFG_HH
#define SI_VERIFY_CFG_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace si {

/** One basic block: the half-open pc range [first, end). */
struct CfgBlock
{
    std::uint32_t first = 0;
    std::uint32_t end = 0;

    std::vector<std::uint32_t> succs; ///< successor block ids
    std::vector<std::uint32_t> preds; ///< predecessor block ids

    std::uint32_t last() const { return end - 1; }
};

/**
 * The control-flow graph. Block 0 is the entry (pc 0). Construction
 * requires a structurally sane program (branch targets in range) —
 * run the verifier's bounds pass first.
 */
class Cfg
{
  public:
    static Cfg build(const Program &program);

    const std::vector<CfgBlock> &blocks() const { return blocks_; }
    const CfgBlock &block(std::uint32_t id) const { return blocks_[id]; }
    std::uint32_t numBlocks() const { return std::uint32_t(blocks_.size()); }

    /** Block containing @p pc. */
    std::uint32_t blockOf(std::uint32_t pc) const { return blockOf_[pc]; }

    /** Block ids in reverse postorder from the entry (unreachable
     *  blocks are absent). */
    const std::vector<std::uint32_t> &rpo() const { return rpo_; }

    /** True when @p id is reachable from the entry block. */
    bool reachable(std::uint32_t id) const { return reachable_[id]; }

    /**
     * Immediate dominator per block (entry maps to itself; unreachable
     * blocks map to the invalid id numBlocks()). Cooper-Harvey-Kennedy
     * iteration over the reverse postorder.
     */
    std::vector<std::uint32_t> immediateDominators() const;

    /**
     * Instruction-granular dominance: every path from the entry to
     * @p pcB executes @p pcA first. @p idom must come from
     * immediateDominators().
     */
    bool dominates(std::uint32_t pcA, std::uint32_t pcB,
                   const std::vector<std::uint32_t> &idom) const;

    /**
     * Instruction-granular forward reachability: some path from @p from
     * (exclusive) executes @p to. Linear in the graph size per query.
     */
    bool reaches(std::uint32_t from, std::uint32_t to) const;

    /** Blocks from which some EXIT instruction is reachable. */
    std::vector<bool> canReachExit(const Program &program) const;

  private:
    std::vector<CfgBlock> blocks_;
    std::vector<std::uint32_t> blockOf_;
    std::vector<std::uint32_t> rpo_;
    std::vector<bool> reachable_;
};

} // namespace si

#endif // SI_VERIFY_CFG_HH
