/**
 * @file
 * Deterministic parallel execution engine.
 *
 * Two layers:
 *
 *  - ThreadPool: a small work-stealing thread pool. Each worker owns a
 *    deque; owners pop newest-first (cache-warm), idle workers steal
 *    oldest-first from their siblings. Nothing about the pool is
 *    deterministic — it only promises that every submitted task runs
 *    exactly once.
 *
 *  - mapIndexed(): the determinism contract on top. N independent cells
 *    are executed by up to `jobs` workers in whatever order the pool
 *    reaches them, but results are collected into an index-keyed vector
 *    and an optional `in_order` callback fires for cell 0, 1, 2, ... in
 *    strict index order regardless of completion order. A sweep whose
 *    cells are pure functions of their index therefore produces
 *    byte-identical tables, stats, and logs at any --jobs value.
 *
 * Fault isolation: a cell that throws does not poison its siblings.
 * Every cell runs to completion (or failure); the lowest-index
 * exception — a deterministic choice — is rethrown from mapIndexed()
 * after the whole batch has finished.
 *
 * jobs == 1 never starts a thread: cells run inline on the caller, in
 * index order, which keeps the serial path fork-safe and bit-identical
 * to the pre-parallel code by construction.
 */

#ifndef SI_PARALLEL_EXECUTOR_HH
#define SI_PARALLEL_EXECUTOR_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace si::parallel {

/** Hardware concurrency, clamped to at least 1. */
unsigned defaultJobs();

/**
 * Resolve a --jobs argument: 0 means "all cores" (defaultJobs()),
 * anything else passes through.
 */
unsigned resolveJobs(unsigned jobs);

/** Work-stealing thread pool. */
class ThreadPool
{
  public:
    /** Start @p jobs workers (clamped to >= 1). */
    explicit ThreadPool(unsigned jobs);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned jobs() const { return unsigned(workers_.size()); }

    /**
     * Enqueue @p task on one worker's deque (round-robin). Tasks must
     * not throw — wrap fallible work and capture the exception (as
     * mapIndexed() does).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

  private:
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    /** Pop from own deque (newest first) or steal (oldest first). */
    bool findTask(unsigned self, std::function<void()> &out);

    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // Guards the counters and wakeups. Task deques have their own
    // mutexes so submit/steal contention stays per-worker.
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t queued_ = 0;    ///< submitted, not yet started
    std::size_t running_ = 0;   ///< started, not yet finished
    std::size_t nextWorker_ = 0;
    bool stop_ = false;
};

namespace detail {

/** Shared bookkeeping for one mapIndexed() batch. */
struct OrderedDelivery
{
    std::mutex mutex;
    std::vector<bool> done;
    std::size_t next = 0;

    explicit OrderedDelivery(std::size_t n) : done(n, false) {}

    /**
     * Mark @p index complete and run @p deliver for every cell of the
     * now-contiguous completed prefix, in index order. The mutex is
     * held across delivery so callbacks are serialized — they are for
     * logging/streaming, not for heavy work.
     */
    void
    complete(std::size_t index,
             const std::function<void(std::size_t)> &deliver)
    {
        std::lock_guard<std::mutex> lock(mutex);
        done[index] = true;
        while (next < done.size() && done[next]) {
            if (deliver)
                deliver(next);
            ++next;
        }
    }
};

} // namespace detail

/**
 * Execute @p fn(0..n-1) with up to @p jobs concurrent workers and
 * deterministic, index-keyed collection.
 *
 * @param in_order  optional streaming callback, invoked as (index,
 *                  result) in strict index order once the contiguous
 *                  prefix through that index has completed. Runs under
 *                  a lock — keep it to printing/accumulation.
 *
 * Exceptions thrown by @p fn are captured per cell; after ALL cells
 * have finished, the exception of the lowest failing index (if any) is
 * rethrown. Cells whose index precedes the first failure are always
 * delivered to @p in_order before the rethrow; later successful cells
 * are delivered too (their results are valid — only the rethrow
 * signals the batch failure).
 */
template <typename R>
std::vector<R>
mapIndexed(unsigned jobs, std::size_t n,
           const std::function<R(std::size_t)> &fn,
           const std::function<void(std::size_t, const R &)> &in_order =
               nullptr)
{
    std::vector<R> results(n);
    if (n == 0)
        return results;

    jobs = resolveJobs(jobs);
    if (jobs <= 1 || n == 1) {
        // Serial path: no threads, strict index order. Exceptions
        // propagate immediately — with one worker the lowest failing
        // index is by definition the first one reached.
        for (std::size_t i = 0; i < n; ++i) {
            results[i] = fn(i);
            if (in_order)
                in_order(i, results[i]);
        }
        return results;
    }

    std::vector<std::exception_ptr> errors(n);
    detail::OrderedDelivery delivery(n);
    const auto deliver = [&](std::size_t idx) {
        if (in_order && !errors[idx])
            in_order(idx, results[idx]);
    };

    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    results[i] = fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                delivery.complete(i, deliver);
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    return results;
}

/** mapIndexed for void cells (side-effecting work). */
void forIndexed(unsigned jobs, std::size_t n,
                const std::function<void(std::size_t)> &fn);

} // namespace si::parallel

#endif // SI_PARALLEL_EXECUTOR_HH
