#include "parallel/executor.hh"

namespace si::parallel {

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? defaultJobs() : jobs;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        target = nextWorker_;
        nextWorker_ = (nextWorker_ + 1) % workers_.size();
        ++queued_;
    }
    {
        Worker &w = *workers_[target];
        std::lock_guard<std::mutex> lock(w.mutex);
        w.tasks.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

bool
ThreadPool::findTask(unsigned self, std::function<void()> &out)
{
    // Own deque first, newest task (back) — the classic Chase-Lev
    // owner end, warm in cache when cells enqueue follow-up work.
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.tasks.empty()) {
            out = std::move(w.tasks.back());
            w.tasks.pop_back();
            return true;
        }
    }
    // Steal from siblings, oldest task (front), scanning away from our
    // own slot so thieves spread instead of mobbing worker 0.
    for (std::size_t k = 1; k < workers_.size(); ++k) {
        Worker &w = *workers_[(self + k) % workers_.size()];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.tasks.empty()) {
            out = std::move(w.tasks.front());
            w.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        std::function<void()> task;
        if (findTask(self, task)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --queued_;
                ++running_;
            }
            task();
            bool drained;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --running_;
                drained = queued_ == 0 && running_ == 0;
            }
            if (drained)
                allDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            return;
        if (queued_ > 0)
            continue; // a task appeared between scan and lock
        workAvailable_.wait(lock,
                            [this] { return stop_ || queued_ > 0; });
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queued_ == 0 && running_ == 0; });
}

void
forIndexed(unsigned jobs, std::size_t n,
           const std::function<void(std::size_t)> &fn)
{
    struct Unit
    {
    };
    mapIndexed<Unit>(jobs, n, [&fn](std::size_t i) {
        fn(i);
        return Unit{};
    });
}

} // namespace si::parallel
