/**
 * @file
 * Gpu: the top-level simulator object. Owns the SMs, distributes warps,
 * runs the clock loop, and aggregates results.
 */

#ifndef SI_CORE_GPU_HH
#define SI_CORE_GPU_HH

#include <memory>
#include <vector>

#include "common/sim_error.hh"
#include "core/sm.hh"

namespace si {

/** Kernel launch geometry. */
struct LaunchParams
{
    unsigned numWarps = 8;
    unsigned warpsPerCta = 4;
};

/** One kernel of a multi-queue (async compute) co-scheduled launch. */
struct KernelLaunch
{
    const Program *program;
    LaunchParams launch;
};

/** Outcome of one kernel simulation. */
struct GpuResult
{
    Cycle cycles = 0;       ///< kernel runtime (max over SMs)
    bool timedOut = false;  ///< legacy mirror of CycleLimit status
    RunStatus status;       ///< why the run ended (ok, or a failure)
    SmStats total;          ///< statistics summed over SMs (partial on
                            ///< failure: everything up to the error)
    std::vector<SmStats> perSm;

    /** True when the kernel ran to completion. */
    bool ok() const { return status.ok(); }

    /** Sum of per-SM active cycles (the normalizer for SM metrics). */
    std::uint64_t
    smCycleSum() const
    {
        std::uint64_t sum = 0;
        for (const auto &s : perSm)
            sum += s.cycles;
        return sum;
    }

    /** Exposed load-to-use stalls normalized to kernel time (Fig. 3). */
    double
    exposedStallFraction() const
    {
        const std::uint64_t norm = smCycleSum();
        return norm ? double(total.exposedLoadStallCycles) / double(norm)
                    : 0;
    }

    /** Divergent exposed stalls normalized to kernel time (Fig. 3). */
    double
    divergentStallFraction() const
    {
        const std::uint64_t norm = smCycleSum();
        return norm ? double(total.exposedLoadStallCyclesDivergent) /
                          double(norm)
                    : 0;
    }
};

/**
 * A complete GPU: config.numSms SMs sharing a functional memory image
 * and (optionally) a scene BVH served by per-SM RT cores.
 */
class Gpu
{
  public:
    Gpu(const GpuConfig &config, Memory &memory,
        const Bvh *scene = nullptr);

    /**
     * Execute @p program to completion (or a watchdog limit).
     * Warps are distributed round-robin across SMs; SMs admit them to
     * processing blocks as occupancy allows.
     *
     * Errors do not escape as exceptions: launch validation failures,
     * barrier deadlocks, livelocks, and invariant violations unwind the
     * run and come back in GpuResult::status, with whatever statistics
     * had accumulated up to the failure.
     */
    GpuResult run(const Program &program, const LaunchParams &launch);

    /**
     * Co-schedule several kernels, as asynchronous compute queues do
     * (paper Sections II-B / V-C-2 / VII-B): warps from all kernels
     * interleave into the same warp slots, contending for slots and
     * register-file space. Runs until every kernel completes.
     */
    GpuResult runMulti(const std::vector<KernelLaunch> &kernels);

    /** Access an SM (tests). */
    Sm &sm(unsigned i) { return *sms_[i]; }
    unsigned numSms() const { return unsigned(sms_.size()); }

    /** The effective configuration (hooks like fault injection use the
     *  installed trace sink through this). */
    const GpuConfig &config() const { return config_; }

  private:
    const GpuConfig config_; ///< copied: callers may reuse/modify theirs
    Memory &memory_;
    const Bvh *scene_;
    std::vector<std::unique_ptr<Sm>> sms_;
};

/** Convenience: build a GPU and run one kernel. */
GpuResult simulate(const GpuConfig &config, Memory &memory,
                   const Program &program, const LaunchParams &launch,
                   const Bvh *scene = nullptr);

} // namespace si

#endif // SI_CORE_GPU_HH
