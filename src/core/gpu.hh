/**
 * @file
 * Gpu: the top-level simulator object. Owns the SMs, distributes warps,
 * runs the clock loop, and aggregates results.
 */

#ifndef SI_CORE_GPU_HH
#define SI_CORE_GPU_HH

#include <memory>
#include <vector>

#include "common/sim_error.hh"
#include "core/sm.hh"

namespace si {

class SnapshotWriter;
class SnapshotReader;

/** Kernel launch geometry. */
struct LaunchParams
{
    unsigned numWarps = 8;
    unsigned warpsPerCta = 4;
};

/** One kernel of a multi-queue (async compute) co-scheduled launch. */
struct KernelLaunch
{
    const Program *program;
    LaunchParams launch;
};

/** Outcome of one kernel simulation. */
struct GpuResult
{
    Cycle cycles = 0;       ///< kernel runtime (max over SMs)
    bool timedOut = false;  ///< legacy mirror of CycleLimit status
    RunStatus status;       ///< why the run ended (ok, or a failure)
    SmStats total;          ///< statistics summed over SMs (partial on
                            ///< failure: everything up to the error)
    std::vector<SmStats> perSm;

    /** True when the kernel ran to completion. */
    bool ok() const { return status.ok(); }

    /** Sum of per-SM active cycles (the normalizer for SM metrics). */
    std::uint64_t
    smCycleSum() const
    {
        std::uint64_t sum = 0;
        for (const auto &s : perSm)
            sum += s.cycles;
        return sum;
    }

    /** Exposed load-to-use stalls normalized to kernel time (Fig. 3). */
    double
    exposedStallFraction() const
    {
        const std::uint64_t norm = smCycleSum();
        return norm ? double(total.exposedLoadStallCycles) / double(norm)
                    : 0;
    }

    /** Divergent exposed stalls normalized to kernel time (Fig. 3). */
    double
    divergentStallFraction() const
    {
        const std::uint64_t norm = smCycleSum();
        return norm ? double(total.exposedLoadStallCyclesDivergent) /
                          double(norm)
                    : 0;
    }
};

/**
 * A complete GPU: config.numSms SMs sharing a functional memory image
 * and (optionally) a scene BVH served by per-SM RT cores.
 */
class Gpu
{
  public:
    Gpu(const GpuConfig &config, Memory &memory,
        const Bvh *scene = nullptr);

    /**
     * Execute @p program to completion (or a watchdog limit).
     * Warps are distributed round-robin across SMs; SMs admit them to
     * processing blocks as occupancy allows.
     *
     * Errors do not escape as exceptions: launch validation failures,
     * barrier deadlocks, livelocks, and invariant violations unwind the
     * run and come back in GpuResult::status, with whatever statistics
     * had accumulated up to the failure.
     */
    GpuResult run(const Program &program, const LaunchParams &launch);

    /**
     * Co-schedule several kernels, as asynchronous compute queues do
     * (paper Sections II-B / V-C-2 / VII-B): warps from all kernels
     * interleave into the same warp slots, contending for slots and
     * register-file space. Runs until every kernel completes.
     */
    GpuResult runMulti(const std::vector<KernelLaunch> &kernels);

    /**
     * Resume a run frozen by a checkpoint: re-run the launch of
     * @p kernels (which must match the checkpointed launch — programs
     * are verified by source fingerprint, never serialized), overwrite
     * all machine state from @p reader, and continue the clock loop
     * from the checkpointed cycle. A run resumed this way is bit-exact
     * with one that was never interrupted.
     */
    GpuResult resumeMulti(const std::vector<KernelLaunch> &kernels,
                          SnapshotReader &reader);

    /**
     * Serialize the complete machine into @p writer: config and kernel
     * fingerprints, clock-loop counters, the functional memory image,
     * and every SM. Valid at any cycle boundary (the checkpoint hook's
     * firing point).
     */
    void save(SnapshotWriter &writer) const;

    /**
     * Restore state serialized by save(). Warps must already exist (the
     * resume path re-runs the launch first); config or kernel
     * fingerprint mismatches throw SimError(ErrorKind::Snapshot).
     */
    void restore(SnapshotReader &reader);

    /** Cycle the run loop is at (checkpoint naming, diagnostics). */
    Cycle currentCycle() const { return now_; }

    /**
     * Fast-forward diagnostics: leaps taken and cycles skipped by the
     * event-driven cycle-leap engine this run (0 in faithful mode).
     * Wall-clock instrumentation only — never serialized and never
     * part of statistics, so fast-forwarded and per-cycle runs stay
     * byte-identical everywhere that matters.
     */
    std::uint64_t fastForwardLeaps() const { return ffLeaps_; }
    std::uint64_t fastForwardCyclesSkipped() const { return ffSkipped_; }

    /**
     * True when this run may leap: the knob is on and no per-cycle
     * observer (fault hook, race sanitizer, or — in SI_TRACE builds —
     * a trace sink consuming the per-cycle event tier) is attached.
     */
    bool fastForwardEligible() const;

    /** Access an SM (tests; const form for mid-run samplers). */
    Sm &sm(unsigned i) { return *sms_[i]; }
    const Sm &sm(unsigned i) const { return *sms_[i]; }
    unsigned numSms() const { return unsigned(sms_.size()); }

    /** The effective configuration (hooks like fault injection use the
     *  installed trace sink through this). */
    const GpuConfig &config() const { return config_; }

  private:
    /** Validate @p kernels and distribute their warps across SMs. */
    void launchKernels(const std::vector<KernelLaunch> &kernels);

    /** The clock loop; runs until done or a watchdog fires. */
    void runLoop(GpuResult &result);

    /** Watchdog trace stamp + per-SM stats folding. */
    void finalize(GpuResult &result);

    const GpuConfig config_; ///< copied: callers may reuse/modify theirs
    Memory &memory_;
    const Bvh *scene_;
    std::vector<std::unique_ptr<Sm>> sms_;

    /** The active launch (programs not owned); save() fingerprints it. */
    std::vector<KernelLaunch> kernels_;

    /**
     * Cycle-leap step: with every SM quiet after the tick at now_ - 1,
     * compute the next-event horizon (min over per-SM wakeups/events,
     * the watchdog deadlines, and every hook/sampler boundary) and
     * advance now_ to it in one step, bulk-applying per-cycle
     * accounting via Sm::applyQuietCycles. @p events_pending is the
     * loop's hasPendingWritebacks() disjunction for this iteration.
     */
    void maybeFastForward(bool eligible, bool events_pending);

    // Run-loop state, members so a checkpoint can capture and a resume
    // re-enter the loop mid-run (see runLoop()).
    Cycle now_ = 0;
    std::uint64_t lastIssued_ = 0;
    Cycle lastProgress_ = 0;

    // Fast-forward diagnostics (not serialized; see fastForwardLeaps).
    std::uint64_t ffLeaps_ = 0;
    std::uint64_t ffSkipped_ = 0;
};

/**
 * FNV-1a fingerprint over every determinism-relevant GpuConfig field
 * (architecture geometry, latencies, SI policy knobs, scheduler, RNG
 * seed, watchdog limits — not hooks or trace sinks). A checkpoint only
 * restores under a config with the same fingerprint.
 */
std::uint64_t configFingerprint(const GpuConfig &config);

/** FNV-1a fingerprint of a program (name, register demand, source). */
std::uint64_t programFingerprint(const Program &program);

/** Convenience: build a GPU and run one kernel. */
GpuResult simulate(const GpuConfig &config, Memory &memory,
                   const Program &program, const LaunchParams &launch,
                   const Bvh *scene = nullptr);

} // namespace si

#endif // SI_CORE_GPU_HH
