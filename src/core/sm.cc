#include "core/sm.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "core/invariants.hh"
#include "race/hooks.hh"
#include "trace/events.hh"

namespace si {

namespace {

float
asFloat(std::uint32_t bits)
{
    return Instr::bitsToFloat(std::int32_t(bits));
}

std::uint32_t
asBits(float f)
{
    return std::uint32_t(Instr::fbits(f));
}

bool
compare(CmpOp op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
    }
    return false;
}

bool
compareF(CmpOp op, float a, float b)
{
    switch (op) {
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
    }
    return false;
}

/**
 * Classify a lost issue slot as one of the paper's Figure 3 stall
 * reasons, mirroring the SmStats counter switch in Sm::tick() exactly
 * so per-reason totals reconcile with the counters:
 * LoadToUse+Barrier+NoReadySubwarp == warpScoreboardStallCycles,
 * IFetch == warpFetchStallCycles, Pipe == warpPipeStallCycles,
 * Switch == warpSwitchCycles. Shared by the per-reason SmStats
 * counters and the StallCycle trace events.
 */
StallReason
classifyStall(const Warp &w, WarpStatus st)
{
    switch (st) {
      case WarpStatus::ScoreboardStall:
        return StallReason::LoadToUse;
      case WarpStatus::FetchStall:
        return StallReason::IFetch;
      case WarpStatus::PipeStall:
        return StallReason::Pipe;
      case WarpStatus::Busy:
        return StallReason::Switch;
      case WarpStatus::WaitWakeup:
      default:
        return w.lanesInState(ThreadState::Blocked).any()
                   ? StallReason::Barrier
                   : StallReason::NoReadySubwarp;
    }
}

#if SI_TRACE_ENABLED

TraceEvent
warpEvent(unsigned sm_id, const Warp &w, TraceEventKind kind, Cycle now)
{
    TraceEvent ev;
    ev.cycle = now;
    ev.warpId = std::uint16_t(w.id());
    ev.smId = std::uint8_t(sm_id);
    ev.pb = std::uint8_t(w.pb());
    ev.kind = kind;
    return ev;
}

TraceEvent
cacheEvent(TraceEventKind kind, unsigned sm_id, const Warp &w, Cycle now,
           TraceCacheLevel level, Cache::AccessResult res, Addr line,
           std::uint32_t pc)
{
    TraceEvent ev = warpEvent(sm_id, w, kind, now);
    ev.addr = line;
    ev.pc = pc;
    ev.mask = w.activeMask().raw();
    ev.arg = std::uint32_t(level) | (std::uint32_t(res.hit) << 8) |
             (std::uint32_t(res.evicted) << 9);
    return ev;
}

/** A StallCycle event for @p w, bucketed by classifyStall(). */
TraceEvent
stallEvent(unsigned sm_id, const Warp &w, WarpStatus st, Cycle now)
{
    const StallReason reason = classifyStall(w, st);

    // Attribute to the active pc; with no ACTIVE subwarp, to the first
    // stalled TST entry's pc (the load the warp is waiting behind).
    std::uint32_t pc = traceNoPc;
    if (w.activeMask().any()) {
        pc = w.activePc();
    } else {
        for (const auto &e : w.tst()) {
            if (e.valid) {
                pc = e.pc;
                break;
            }
        }
    }
    std::uint32_t op = traceNoOpcode;
    if (pc != traceNoPc && pc < w.program().size())
        op = std::uint32_t(w.program().at(pc).op);

    TraceEvent ev = warpEvent(sm_id, w, TraceEventKind::StallCycle, now);
    ev.pc = pc;
    ev.mask = w.activeMask().raw();
    ev.arg = std::uint32_t(reason) | (op << 8);
    return ev;
}

#endif // SI_TRACE_ENABLED

} // namespace

void
RegionCounters::accumulate(const RegionCounters &other)
{
    warpCycles += other.warpCycles;
    instrsIssued += other.instrsIssued;
    arbLossCycles += other.arbLossCycles;
    for (std::size_t i = 0; i < stallCyclesByReason.size(); ++i)
        stallCyclesByReason[i] += other.stallCyclesByReason[i];
}

void
SmStats::accumulate(const SmStats &other)
{
    cycles = std::max(cycles, other.cycles);
    instrsIssued += other.instrsIssued;
    warpsRetired += other.warpsRetired;
    noIssueCycles += other.noIssueCycles;
    gmemTransactions += other.gmemTransactions;
    exposedLoadStallCycles += other.exposedLoadStallCycles;
    exposedLoadStallCyclesDivergent += other.exposedLoadStallCyclesDivergent;
    exposedFetchStallCycles += other.exposedFetchStallCycles;
    warpScoreboardStallCycles += other.warpScoreboardStallCycles;
    warpPipeStallCycles += other.warpPipeStallCycles;
    warpFetchStallCycles += other.warpFetchStallCycles;
    warpSwitchCycles += other.warpSwitchCycles;
    ldgIssued += other.ldgIssued;
    texIssued += other.texIssued;
    rtQueriesIssued += other.rtQueriesIssued;
    stgIssued += other.stgIssued;
    divergentBranches += other.divergentBranches;
    reconvergences += other.reconvergences;
    subwarpSelects += other.subwarpSelects;
    subwarpStalls += other.subwarpStalls;
    subwarpWakeups += other.subwarpWakeups;
    subwarpYields += other.subwarpYields;
    tstFullDenials += other.tstFullDenials;
    l1dHits += other.l1dHits;
    l1dMisses += other.l1dMisses;
    l1iHits += other.l1iHits;
    l1iMisses += other.l1iMisses;
    l0iHits += other.l0iHits;
    l0iMisses += other.l0iMisses;
    liveWarpCycles += other.liveWarpCycles;
    arbLossCycles += other.arbLossCycles;
    for (std::size_t i = 0; i < stallCyclesByReason.size(); ++i)
        stallCyclesByReason[i] += other.stallCyclesByReason[i];
    warpCyclesSubwarpFull += other.warpCyclesSubwarpFull;
    warpCyclesSubwarpPartial += other.warpCyclesSubwarpPartial;
    warpCyclesSubwarpNone += other.warpCyclesSubwarpNone;
    if (regions.size() < other.regions.size())
        regions.resize(other.regions.size());
    for (std::size_t i = 0; i < other.regions.size(); ++i)
        regions[i].accumulate(other.regions[i]);
}

void
SmStats::save(SnapshotWriter &w) const
{
    w.tag(SnapTag::Stats);
    w.u64(cycles);
    w.u64(instrsIssued);
    w.u64(warpsRetired);
    w.u64(noIssueCycles);
    w.u64(exposedLoadStallCycles);
    w.f64(exposedLoadStallCyclesDivergent);
    w.u64(exposedFetchStallCycles);
    w.u64(warpScoreboardStallCycles);
    w.u64(warpPipeStallCycles);
    w.u64(warpFetchStallCycles);
    w.u64(warpSwitchCycles);
    w.u64(ldgIssued);
    w.u64(gmemTransactions);
    w.u64(texIssued);
    w.u64(rtQueriesIssued);
    w.u64(stgIssued);
    w.u64(divergentBranches);
    w.u64(reconvergences);
    w.u64(subwarpSelects);
    w.u64(subwarpStalls);
    w.u64(subwarpWakeups);
    w.u64(subwarpYields);
    w.u64(tstFullDenials);
    w.u64(l1dHits);
    w.u64(l1dMisses);
    w.u64(l1iHits);
    w.u64(l1iMisses);
    w.u64(l0iHits);
    w.u64(l0iMisses);
    w.u64(liveWarpCycles);
    w.u64(arbLossCycles);
    for (std::uint64_t v : stallCyclesByReason)
        w.u64(v);
    w.u64(warpCyclesSubwarpFull);
    w.u64(warpCyclesSubwarpPartial);
    w.u64(warpCyclesSubwarpNone);
    w.u64(regions.size());
    for (const RegionCounters &rc : regions) {
        w.u64(rc.warpCycles);
        w.u64(rc.instrsIssued);
        w.u64(rc.arbLossCycles);
        for (std::uint64_t v : rc.stallCyclesByReason)
            w.u64(v);
    }
}

void
SmStats::restore(SnapshotReader &r)
{
    r.tag(SnapTag::Stats);
    cycles = r.u64();
    instrsIssued = r.u64();
    warpsRetired = r.u64();
    noIssueCycles = r.u64();
    exposedLoadStallCycles = r.u64();
    exposedLoadStallCyclesDivergent = r.f64();
    exposedFetchStallCycles = r.u64();
    warpScoreboardStallCycles = r.u64();
    warpPipeStallCycles = r.u64();
    warpFetchStallCycles = r.u64();
    warpSwitchCycles = r.u64();
    ldgIssued = r.u64();
    gmemTransactions = r.u64();
    texIssued = r.u64();
    rtQueriesIssued = r.u64();
    stgIssued = r.u64();
    divergentBranches = r.u64();
    reconvergences = r.u64();
    subwarpSelects = r.u64();
    subwarpStalls = r.u64();
    subwarpWakeups = r.u64();
    subwarpYields = r.u64();
    tstFullDenials = r.u64();
    l1dHits = r.u64();
    l1dMisses = r.u64();
    l1iHits = r.u64();
    l1iMisses = r.u64();
    l0iHits = r.u64();
    l0iMisses = r.u64();
    liveWarpCycles = r.u64();
    arbLossCycles = r.u64();
    for (std::uint64_t &v : stallCyclesByReason)
        v = r.u64();
    warpCyclesSubwarpFull = r.u64();
    warpCyclesSubwarpPartial = r.u64();
    warpCyclesSubwarpNone = r.u64();
    regions.resize(r.u64());
    for (RegionCounters &rc : regions) {
        rc.warpCycles = r.u64();
        rc.instrsIssued = r.u64();
        rc.arbLossCycles = r.u64();
        for (std::uint64_t &v : rc.stallCyclesByReason)
            v = r.u64();
    }
}

Sm::Sm(unsigned id, const GpuConfig &config, Memory &memory,
       const Bvh *scene)
    : id_(id),
      config_(config),
      memory_(memory),
      l1d_(config.l1d),
      l1i_(config.l1i),
      rtcore_(scene, config.rtc),
      unit_(config, Rng::streamSeed(config.rngSeed, id), id)
{
    pbs_.reserve(config.pbsPerSm);
    for (unsigned p = 0; p < config.pbsPerSm; ++p)
        pbs_.emplace_back(config.l0i);
    if (config.maxOutstandingMisses > 0)
        mshrFreeAt_.assign(config.maxOutstandingMisses, 0);
}

Cycle
Sm::missCompletion(Cycle now, Cycle base_latency)
{
    if (mshrFreeAt_.empty())
        return now + base_latency;
    auto slot = std::min_element(mshrFreeAt_.begin(), mshrFreeAt_.end());
    const Cycle start = std::max(now, *slot);
    *slot = start + base_latency;
    return start + base_latency;
}

void
Sm::addWarp(std::unique_ptr<Warp> warp)
{
    if (maxResidentPerPb_ == 0) {
        const unsigned regs_per_warp =
            warp->program().numRegs() * warpSize;
        unsigned by_regs = config_.regFilePerPb / regs_per_warp;
        sim_throw_if(by_regs == 0, ErrorKind::Config,
                     "kernel '%s' needs %u registers/warp; register file "
                     "holds only %u",
                     warp->program().name().c_str(), regs_per_warp,
                     config_.regFilePerPb);
        // Informational bound for single-kernel launches; admission
        // itself checks slots and register-file headroom per warp.
        maxResidentPerPb_ =
            std::max(1u, std::min(config_.warpSlotsPerPb, by_regs));
    }
    warps_.push_back(std::move(warp));
    pendingAdmission_.push_back(unsigned(warps_.size() - 1));
    statusScratch_.resize(warps_.size(), WarpStatus::Done);
    wakeScratch_.resize(warps_.size(), invalidCycle);
}

bool
Sm::done() const
{
    if (!pendingAdmission_.empty())
        return false;
    for (const auto &w : warps_) {
        if (!w->done())
            return false;
    }
    return true;
}

void
Sm::drainWritebacks(Cycle now)
{
    while (!events_.empty() && events_.begin()->first <= now) {
        const Writeback wb = events_.begin()->second;
        events_.erase(events_.begin());
        tickDirty_ = true;
        Warp &w = *warps_[wb.warpIdx];
        w.scoreboards().decr(wb.mask, wb.sb);
        SI_TRACE_EVENT(config_.traceSink, [&] {
            TraceEvent ev =
                warpEvent(id_, w, TraceEventKind::Writeback, now);
            ev.mask = wb.mask.raw();
            ev.arg = std::uint32_t(wb.sb) |
                     (std::uint32_t(wb.port) << 8);
            return ev;
        }());
        unit_.wakeup(w, wb.sb, now);
    }
}

void
Sm::admitWarps()
{
    for (auto &pb : pbs_) {
        auto &resident = pb.resident;
        // Single-pass stable compaction: each retired warp is swept in
        // O(1) instead of the former erase-in-loop's O(n) shift, and
        // the survivors keep their relative order, so the GTO/LRR scans
        // (which walk resident order / positions) pick identical warps.
        std::size_t out = 0;
        for (std::size_t i = 0; i < resident.size(); ++i) {
            const unsigned wi = resident[i];
            if (!warps_[wi]->done()) {
                resident[out++] = wi;
                continue;
            }
            tickDirty_ = true;
            ++stats_.warpsRetired;
            if (pb.gtoCurrent == int(wi))
                pb.gtoCurrent = -1;
            pb.regsInUse -= warps_[wi]->program().numRegs() * warpSize;
        }
        resident.resize(out);
    }
    // Admission into the least-loaded processing block that has both a
    // free warp slot and register-file headroom for this warp. In-order
    // admission (head-of-line blocking), as launch queues drain FIFO.
    while (!pendingAdmission_.empty()) {
        const unsigned wi = pendingAdmission_.front();
        const unsigned warp_regs =
            warps_[wi]->program().numRegs() * warpSize;

        ProcessingBlock *best = nullptr;
        for (auto &pb : pbs_) {
            if (pb.resident.size() >= config_.warpSlotsPerPb)
                continue;
            if (pb.regsInUse + warp_regs > config_.regFilePerPb)
                continue;
            if (!best || pb.resident.size() < best->resident.size())
                best = &pb;
        }
        if (!best)
            break;
        tickDirty_ = true;
        pendingAdmission_.pop_front();
        warps_[wi]->setPb(unsigned(best - pbs_.data()));
        best->resident.push_back(wi);
        best->regsInUse += warp_regs;
    }
}

WarpStatus
Sm::evalWarp(unsigned warp_idx, Cycle now)
{
    Warp &w = *warps_[warp_idx];
    // Status-expiry scratch for the fast-forward horizon: overwritten
    // below on paths whose status ends at a known cycle; statuses that
    // only a writeback (events_) can change leave it at invalidCycle.
    wakeScratch_[warp_idx] = invalidCycle;
    if (w.done())
        return WarpStatus::Done;

    if (w.activeMask().empty()) {
        if (!w.readySubwarps().empty()) {
            if (now >= w.issueReadyAt) {
                tickDirty_ = true;
                unit_.select(w, now);
            }
            wakeScratch_[warp_idx] = w.issueReadyAt;
            return WarpStatus::Busy;
        }
        if (w.lanesInState(ThreadState::Stalled).any())
            return WarpStatus::WaitWakeup;
        // Every live lane is BLOCKED and no subwarp can ever arrive to
        // complete a barrier: this warp is deadlocked. Unwind with the
        // full machinery state so the failure is diagnosable.
        throw SimError(
            ErrorKind::BarrierDeadlock,
            "sm" + std::to_string(id_) + " warp " + std::to_string(w.id()) +
                ": convergence barrier deadlock (all live lanes blocked, "
                "none ready or stalled)",
            describeWarpState(w));
    }

    if (now < w.issueReadyAt) {
        wakeScratch_[warp_idx] = w.issueReadyAt;
        return w.inFetchStall ? WarpStatus::FetchStall : WarpStatus::Busy;
    }

    // Front end: the instruction at the active PC must sit in the
    // per-warp fetch buffer, fed by L0I -> L1I.
    const std::uint32_t pc = w.activePc();
    if (w.fetchedPc != pc) {
        tickDirty_ = true;
        const Addr line = w.program().instrAddr(pc);
        ProcessingBlock &pb = pbs_[w.pb()];
        const Cache::AccessResult l0 = pb.l0i.accessEx(line);
        SI_TRACE_EVENT(config_.traceSink,
                       cacheEvent(TraceEventKind::CacheAccess, id_, w, now,
                                  TraceCacheLevel::L0I, l0, line, pc));
        w.fetchedPc = pc;
        if (!l0.hit) {
            SI_TRACE_EVENT(config_.traceSink,
                           cacheEvent(TraceEventKind::CacheFill, id_, w,
                                      now, TraceCacheLevel::L0I, l0, line,
                                      pc));
            const Cache::AccessResult l1 = l1i_.accessEx(line);
            SI_TRACE_EVENT(config_.traceSink,
                           cacheEvent(TraceEventKind::CacheAccess, id_, w,
                                      now, TraceCacheLevel::L1I, l1, line,
                                      pc));
            if (!l1.hit) {
                SI_TRACE_EVENT(config_.traceSink,
                               cacheEvent(TraceEventKind::CacheFill, id_,
                                          w, now, TraceCacheLevel::L1I, l1,
                                          line, pc));
            }
            w.issueReadyAt = now + (l1.hit ? config_.lat.l0iMiss
                                           : config_.lat.l1iMiss);
            w.inFetchStall = true;
            wakeScratch_[warp_idx] = w.issueReadyAt;
            return WarpStatus::FetchStall;
        }
    }
    w.inFetchStall = false;

    const Instr &in = w.program().at(pc);
    const ThreadMask active = w.activeMask();

    // Load-to-use stall: a required count-based scoreboard is nonzero.
    if (in.reqSbMask && !w.scoreboards().ready(active, in.reqSbMask))
        return WarpStatus::ScoreboardStall;

    // Short-latency operand dependences.
    Cycle ready_at = 0;
    ready_at = std::max(ready_at, w.regReadyAt(in.srcA));
    if (!in.bImm)
        ready_at = std::max(ready_at, w.regReadyAt(in.srcB));
    ready_at = std::max(ready_at, w.regReadyAt(in.srcC));
    ready_at = std::max(ready_at, w.predReadyAt(in.guard));
    if (in.op == Opcode::SEL)
        ready_at = std::max(ready_at, w.predReadyAt(in.pdst));
    if (ready_at > now) {
        wakeScratch_[warp_idx] = ready_at;
        return WarpStatus::PipeStall;
    }

    return WarpStatus::Issuable;
}

void
Sm::pushWriteback(Cycle when, unsigned warp_idx, ThreadMask mask,
                  SbIndex sb, WbPort port)
{
    events_.emplace(when, Writeback{warp_idx, mask, sb, port});
}

RegionCounters &
Sm::regionAt(std::uint32_t idx)
{
    if (stats_.regions.size() <= idx)
        stats_.regions.resize(std::size_t(idx) + 1);
    return stats_.regions[idx];
}

bool
Sm::stallIsDivergent(const Warp &warp, WarpStatus status) const
{
    const unsigned live = warp.live().count();
    if (status == WarpStatus::ScoreboardStall)
        return warp.activeMask().count() < live;
    if (status == WarpStatus::WaitWakeup) {
        for (const auto &e : warp.tst()) {
            if (e.valid && (e.members & warp.live()).count() < live)
                return true;
        }
        return false;
    }
    return false;
}

void
Sm::issue(unsigned warp_idx, Cycle now)
{
    Warp &w = *warps_[warp_idx];
    const std::uint32_t pc = w.activePc();
    const Instr &in = w.program().at(pc);
    const ThreadMask active = w.activeMask();

    // Guard: lanes whose predicate passes actually execute; all active
    // lanes advance past the instruction regardless.
    ThreadMask exec;
    for (unsigned lane : lanesOf(active)) {
        if (w.predicate(lane, in.guard) != in.guardNeg)
            exec.set(lane);
    }

    ++stats_.instrsIssued;
    w.lastIssueCycle = now;

    // Always-on tier: the differential oracle's retirement traces are
    // derived from Issue events, so these fire in every build.
    if (TraceSink *sink = config_.traceSink) {
        TraceEvent ev;
        ev.cycle = now;
        ev.pc = pc;
        ev.mask = active.raw();
        ev.mask2 = exec.raw();
        ev.arg = std::uint32_t(in.op);
        ev.warpId = std::uint16_t(w.id());
        ev.smId = std::uint8_t(id_);
        ev.pb = std::uint8_t(w.pb());
        ev.kind = TraceEventKind::Issue;
        sink->record(ev);
    }

    auto advance = [&]() {
        for (unsigned lane : lanesOf(active))
            w.setPc(lane, pc + 1);
    };

    auto for_exec = [&](auto &&fn) {
        for (unsigned lane : lanesOf(exec))
            fn(lane);
    };

    auto rd = [&](unsigned lane, RegIndex r) { return w.reg(lane, r); };
    auto rdf = [&](unsigned lane, RegIndex r) {
        return asFloat(w.reg(lane, r));
    };
    auto srcb = [&](unsigned lane) {
        return in.bImm ? std::uint32_t(in.imm) : w.reg(lane, in.srcB);
    };
    auto srcbf = [&](unsigned lane) {
        return in.bImm ? asFloat(std::uint32_t(in.imm))
                       : asFloat(w.reg(lane, in.srcB));
    };

    // Dynamic race sanitizer feed (race/hooks.hh): per-lane addresses of
    // every global-memory access, captured at issue time.
    auto race_event = [&](bool is_store,
                          const std::array<Addr, warpSize> &addrs) {
        MemAccessEvent ev;
        ev.cycle = now;
        ev.smId = id_;
        ev.warpId = w.logicalId;
        ev.pc = pc;
        ev.execMask = exec.raw();
        ev.activeMask = active.raw();
        ev.isStore = is_store;
        ev.addr = addrs;
        config_.raceHooks->onAccess(ev);
    };

    const LatencyConfig &lat = config_.lat;
    bool advanced = false;
    Cycle result_lat = lat.alu;

    switch (in.op) {
      case Opcode::NOP:
        break;

      case Opcode::MOV:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     in.bImm ? std::uint32_t(in.imm) : rd(lane, in.srcA));
        });
        break;

      case Opcode::S2R:
        for_exec([&](unsigned lane) {
            std::uint32_t v = 0;
            switch (SReg(in.imm)) {
              case SReg::TID:
                v = w.logicalId * warpSize + lane;
                break;
              case SReg::CTAID:
                v = w.ctaId;
                break;
              case SReg::LANEID:
                v = lane;
                break;
              case SReg::WARPID:
                v = w.logicalId;
                break;
            }
            w.setReg(lane, in.dst, v);
        });
        break;

      case Opcode::IADD:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) + srcb(lane));
        });
        break;
      case Opcode::ISUB:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) - srcb(lane));
        });
        break;
      case Opcode::IMUL:
        result_lat = lat.heavyAlu;
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) * srcb(lane));
        });
        break;
      case Opcode::IMAD:
        result_lat = lat.heavyAlu;
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     rd(lane, in.srcA) * srcb(lane) + rd(lane, in.srcC));
        });
        break;
      case Opcode::IMIN:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     std::uint32_t(std::min(
                         std::int32_t(rd(lane, in.srcA)),
                         std::int32_t(srcb(lane)))));
        });
        break;
      case Opcode::IMAX:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     std::uint32_t(std::max(
                         std::int32_t(rd(lane, in.srcA)),
                         std::int32_t(srcb(lane)))));
        });
        break;
      case Opcode::AND:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) & srcb(lane));
        });
        break;
      case Opcode::OR:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) | srcb(lane));
        });
        break;
      case Opcode::XOR:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) ^ srcb(lane));
        });
        break;
      case Opcode::SHL:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) << (srcb(lane) & 31));
        });
        break;
      case Opcode::SHR:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst, rd(lane, in.srcA) >> (srcb(lane) & 31));
        });
        break;

      case Opcode::FADD:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(rdf(lane, in.srcA) + srcbf(lane)));
        });
        break;
      case Opcode::FMUL:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(rdf(lane, in.srcA) * srcbf(lane)));
        });
        break;
      case Opcode::FFMA:
        result_lat = lat.heavyAlu;
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(rdf(lane, in.srcA) * srcbf(lane) +
                            rdf(lane, in.srcC)));
        });
        break;
      case Opcode::FMIN:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(std::fmin(rdf(lane, in.srcA), srcbf(lane))));
        });
        break;
      case Opcode::FMAX:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(std::fmax(rdf(lane, in.srcA), srcbf(lane))));
        });
        break;
      case Opcode::FRCP:
        result_lat = lat.transcendental;
        for_exec([&](unsigned lane) {
            const float a = rdf(lane, in.srcA);
            w.setReg(lane, in.dst, asBits(a == 0.0f ? 0.0f : 1.0f / a));
        });
        break;
      case Opcode::FSQRT:
        result_lat = lat.transcendental;
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(std::sqrt(std::fmax(0.0f,
                                                rdf(lane, in.srcA)))));
        });
        break;
      case Opcode::I2F:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     asBits(float(std::int32_t(rd(lane, in.srcA)))));
        });
        break;
      case Opcode::F2I:
        for_exec([&](unsigned lane) {
            // Saturating conversion (CUDA cvt semantics); the naive
            // cast is UB for out-of-range values.
            const float f = rdf(lane, in.srcA);
            std::int32_t v;
            if (!std::isfinite(f))
                v = f > 0 ? INT32_MAX : (f < 0 ? INT32_MIN : 0);
            else if (f >= 2147483647.0f)
                v = INT32_MAX;
            else if (f <= -2147483648.0f)
                v = INT32_MIN;
            else
                v = std::int32_t(f);
            w.setReg(lane, in.dst, std::uint32_t(v));
        });
        break;

      case Opcode::ISETP:
        for_exec([&](unsigned lane) {
            w.setPredicate(lane, in.pdst,
                           compare(in.cmp,
                                   std::int32_t(rd(lane, in.srcA)),
                                   std::int32_t(srcb(lane))));
        });
        w.setPredReadyAt(in.pdst, now + lat.alu);
        break;
      case Opcode::FSETP:
        for_exec([&](unsigned lane) {
            w.setPredicate(lane, in.pdst,
                           compareF(in.cmp, rdf(lane, in.srcA),
                                    srcbf(lane)));
        });
        w.setPredReadyAt(in.pdst, now + lat.alu);
        break;
      case Opcode::SEL:
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     w.predicate(lane, in.pdst) ? rd(lane, in.srcA)
                                                : srcb(lane));
        });
        break;

      case Opcode::LDC:
        result_lat = lat.constLoad;
        for_exec([&](unsigned lane) {
            w.setReg(lane, in.dst,
                     memory_.readConst(std::uint32_t(in.imm)));
        });
        break;

      case Opcode::LDG: {
        ++stats_.ldgIssued;
        bool any_miss = false;
        // Coalesce: one L1D transaction per unique line across lanes.
        std::array<Addr, warpSize> lines;
        std::array<Addr, warpSize> lane_addrs{};
        unsigned num_lines = 0;
        for (unsigned lane : lanesOf(exec)) {
            const Addr addr =
                Addr(rd(lane, in.srcA)) + Addr(std::int64_t(in.imm));
            lane_addrs[lane] = addr;
            w.setReg(lane, in.dst, memory_.read(addr));
            const Addr line = l1d_.lineOf(addr);
            bool seen = false;
            for (unsigned i = 0; i < num_lines; ++i)
                seen |= lines[i] == line;
            if (!seen)
                lines[num_lines++] = line;
        }
        if (config_.raceHooks != nullptr && exec.any())
            race_event(false, lane_addrs);
        for (unsigned i = 0; i < num_lines; ++i) {
            const Cache::AccessResult res = l1d_.accessEx(lines[i]);
            any_miss |= !res.hit;
            SI_TRACE_EVENT(config_.traceSink,
                           cacheEvent(TraceEventKind::CacheAccess, id_, w,
                                      now, TraceCacheLevel::L1D, res,
                                      lines[i], pc));
            if (!res.hit) {
                SI_TRACE_EVENT(config_.traceSink,
                               cacheEvent(TraceEventKind::CacheFill, id_,
                                          w, now, TraceCacheLevel::L1D,
                                          res, lines[i], pc));
            }
        }
        stats_.gmemTransactions += num_lines;
        if (exec.any() && in.wrSb != sbNone) {
            w.scoreboards().incr(exec, in.wrSb);
            const Cycle done = any_miss
                                   ? missCompletion(now, lat.l1Miss)
                                   : now + lat.l1Hit;
            pushWriteback(done, warp_idx, exec, in.wrSb, WbPort::Lsu);
        }
        ++w.longOpsSinceSwitch;
        result_lat = 1;
        break;
      }

      case Opcode::STG: {
        ++stats_.stgIssued;
        std::array<Addr, warpSize> lane_addrs{};
        for_exec([&](unsigned lane) {
            const Addr addr =
                Addr(rd(lane, in.srcA)) + Addr(std::int64_t(in.imm));
            lane_addrs[lane] = addr;
            memory_.write(addr, rd(lane, in.srcB));
        });
        if (config_.raceHooks != nullptr && exec.any())
            race_event(true, lane_addrs);
        break;
      }

      case Opcode::TEX:
      case Opcode::TLD: {
        ++stats_.texIssued;
        bool any_miss = false;
        std::array<Addr, warpSize> lines;
        std::array<Addr, warpSize> lane_addrs{};
        unsigned num_lines = 0;
        for (unsigned lane : lanesOf(exec)) {
            const Addr addr =
                texelAddress(rd(lane, in.srcA), rd(lane, in.srcB));
            lane_addrs[lane] = addr;
            w.setReg(lane, in.dst, memory_.read(addr));
            const Addr line = l1d_.lineOf(addr);
            bool seen = false;
            for (unsigned i = 0; i < num_lines; ++i)
                seen |= lines[i] == line;
            if (!seen)
                lines[num_lines++] = line;
        }
        if (config_.raceHooks != nullptr && exec.any())
            race_event(false, lane_addrs);
        for (unsigned i = 0; i < num_lines; ++i) {
            const Cache::AccessResult res = l1d_.accessEx(lines[i]);
            any_miss |= !res.hit;
            SI_TRACE_EVENT(config_.traceSink,
                           cacheEvent(TraceEventKind::CacheAccess, id_, w,
                                      now, TraceCacheLevel::L1D, res,
                                      lines[i], pc));
            if (!res.hit) {
                SI_TRACE_EVENT(config_.traceSink,
                               cacheEvent(TraceEventKind::CacheFill, id_,
                                          w, now, TraceCacheLevel::L1D,
                                          res, lines[i], pc));
            }
        }
        stats_.gmemTransactions += num_lines;
        if (exec.any() && in.wrSb != sbNone) {
            w.scoreboards().incr(exec, in.wrSb);
            const Cycle done = any_miss
                                   ? missCompletion(now, lat.l1Miss)
                                   : now + lat.l1Hit;
            pushWriteback(done + lat.texBase, warp_idx, exec, in.wrSb,
                          WbPort::Tex);
        }
        ++w.longOpsSinceSwitch;
        result_lat = 1;
        break;
      }

      case Opcode::RTQUERY: {
        ++stats_.rtQueriesIssued;
        sim_throw_if(!rtcore_.hasScene(), ErrorKind::Config,
                     "RTQUERY issued but no scene is attached");
        std::array<Ray, warpSize> rays;
        for (unsigned lane : lanesOf(exec)) {
            Ray &r = rays[lane];
            r.origin = {rdf(lane, RegIndex(in.srcA + 0)),
                        rdf(lane, RegIndex(in.srcA + 1)),
                        rdf(lane, RegIndex(in.srcA + 2))};
            r.dir = {rdf(lane, RegIndex(in.srcA + 3)),
                     rdf(lane, RegIndex(in.srcA + 4)),
                     rdf(lane, RegIndex(in.srcA + 5))};
        }
        const WarpQueryResult q = rtcore_.query(now, exec, rays);
        for (unsigned lane : lanesOf(exec)) {
            const Hit &h = q.hits[lane];
            w.setReg(lane, in.dst, h.valid ? h.materialId + 1 : 0);
            w.setReg(lane, RegIndex(in.dst + 1),
                     asBits(h.valid ? h.t : 1e30f));
            w.setReg(lane, RegIndex(in.dst + 2), h.primId);
        }
        if (exec.any() && in.wrSb != sbNone) {
            w.scoreboards().incr(exec, in.wrSb);
            pushWriteback(now + q.latency, warp_idx, exec, in.wrSb,
                          WbPort::Tex);
        }
        ++w.longOpsSinceSwitch;
        result_lat = 1;
        break;
      }

      case Opcode::BRA: {
        if (exec.empty()) {
            // No lane takes the branch.
            break;
        }
        if (exec == active) {
            for (unsigned lane : lanesOf(active))
                w.setPc(lane, in.target);
            advanced = true;
            break;
        }
        // Divergence: exec lanes take, the rest fall through.
        unit_.diverge(w, exec, in.target, pc + 1, in.stallHint, now);
        advanced = true;
        break;
      }

      case Opcode::BSSY:
        w.setBarrier(in.bar, w.barrier(in.bar) | active);
        break;

      case Opcode::BSYNC:
        unit_.arriveBsync(w, in.bar, pc, now);
        advanced = true;
        break;

      case Opcode::YIELD:
        advance();
        advanced = true;
        if (config_.siEnabled && config_.yieldEnabled)
            unit_.subwarpYield(w, now);
        break;

      case Opcode::MARKER:
        // Region marker: retag the warp's metrics region. Costs one
        // issue slot (NOP timing); the slot is attributed to the region
        // being opened, below.
        w.currentRegion = std::uint32_t(in.imm);
        break;

      case Opcode::EXIT: {
        if (exec == active) {
            unit_.exitLanes(w, exec, now);
        } else {
            // Partially guarded EXIT: survivors continue.
            for (unsigned lane : lanesOf(active - exec))
                w.setPc(lane, pc + 1);
            unit_.exitLanes(w, exec, now);
        }
        advanced = true;
        break;
      }

      default:
        sim_throw(ErrorKind::Internal, "unhandled opcode %s",
                  opcodeName(in.op));
    }

    // Region attribution of the issued slot, after the opcode switch so
    // a MARKER's own issue lands in the region it opens.
    {
        RegionCounters &rc = regionAt(w.currentRegion);
        ++rc.warpCycles;
        ++rc.instrsIssued;
    }

    if (!advanced)
        advance();

    // Always-on tier: warp completion marker.
    if (w.done()) {
        if (TraceSink *sink = config_.traceSink) {
            TraceEvent ev;
            ev.cycle = now;
            ev.pc = pc;
            ev.warpId = std::uint16_t(w.id());
            ev.smId = std::uint8_t(id_);
            ev.pb = std::uint8_t(w.pb());
            ev.kind = TraceEventKind::WarpRetire;
            sink->record(ev);
        }
    }

    // Result latency for short producers; long producers are guarded by
    // their scoreboards and only need the issue slot.
    if (in.dst != regNone && in.op != Opcode::STG)
        w.setRegReadyAt(in.dst, now + result_lat);
    if (in.op == Opcode::RTQUERY) {
        w.setRegReadyAt(RegIndex(in.dst + 1), now + 1);
        w.setRegReadyAt(RegIndex(in.dst + 2), now + 1);
    }

    // Hardware-policy subwarp-yield: after a burst of long-latency
    // issues, eagerly hand the slot to another subwarp (Section III-B).
    if (config_.siEnabled && config_.yieldEnabled &&
        isLongLatency(in.op) &&
        w.longOpsSinceSwitch >= config_.yieldThreshold &&
        w.activeMask().any()) {
        unit_.subwarpYield(w, now);
    }
}

void
Sm::tick(Cycle now)
{
    if (done()) {
        // A finished SM is trivially quiet and can never wake: it must
        // not hold the other SMs' horizon down with stale scratch.
        lastTickQuiet_ = true;
        nextEventAt_ = invalidCycle;
        ffAnyLive_ = false;
        ffDeniedDelta_ = 0;
        return;
    }
    ++stats_.cycles;
    tickDirty_ = false;
    const std::uint64_t denied_before =
        unit_.stats().stallDemotionsDeniedTstFull;
    drainWritebacks(now);
    admitWarps();

    unsigned issued_total = 0;
    bool any_live = false;
    unsigned mem_stalled_warps = 0;
    unsigned mem_stalled_divergent = 0;
    bool any_fetch_stall = false;
    Cycle next_wake = invalidCycle;

    for (auto &pb : pbs_) {
        unsigned live = 0;
        unsigned stalled = 0;

        for (unsigned wi : pb.resident) {
            const WarpStatus st = evalWarp(wi, now);
            statusScratch_[wi] = st;
            if (st == WarpStatus::Done)
                continue;
            ++live;
            Warp &w = *warps_[wi];

            // Warp-cycle partition and subwarp-mode residency (sampled
            // after evalWarp, so a subwarp promoted this cycle counts
            // as active).
            accountWarpCycles(w, st, 1);
            next_wake = std::min(next_wake, wakeScratch_[wi]);

            switch (st) {
              case WarpStatus::ScoreboardStall:
              case WarpStatus::WaitWakeup:
                ++stalled;
                ++mem_stalled_warps;
                if (stallIsDivergent(w, st))
                    ++mem_stalled_divergent;
                break;
              case WarpStatus::FetchStall:
                any_fetch_stall = true;
                break;
              default:
                break;
            }
            // One StallCycle event per lost warp-slot, bucketed by the
            // same classification as the counters in
            // accountWarpCycles — the profiler and the windowed
            // metrics sampler reconcile the two exactly.
            if (st != WarpStatus::Issuable) {
                SI_TRACE_EVENT(config_.traceSink,
                               stallEvent(id_, w, st, now));
            }
        }
        any_live |= live > 0;

        // ---- warp scheduler: pick one issuable warp ----
        int pick = -1;
        if (config_.sched == SchedPolicy::GTO) {
            if (pb.gtoCurrent >= 0 &&
                statusScratch_[pb.gtoCurrent] == WarpStatus::Issuable) {
                pick = pb.gtoCurrent;
            } else {
                for (unsigned wi : pb.resident) {
                    if (statusScratch_[wi] == WarpStatus::Issuable) {
                        pick = int(wi);
                        break;
                    }
                }
            }
        } else { // LRR
            const std::size_t n = pb.resident.size();
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t pos = (pb.lrrCursor + 1 + k) % n;
                const unsigned wi = pb.resident[pos];
                if (statusScratch_[wi] == WarpStatus::Issuable) {
                    pick = int(wi);
                    pb.lrrCursor = unsigned(pos);
                    break;
                }
            }
        }

        if (pick >= 0) {
            issue(unsigned(pick), now);
            pb.gtoCurrent = pick;
            ++issued_total;
        }

        // Arbitration losses: issuable warps that lost the slot to the
        // pick. Together with the per-reason stall counts and the issue
        // itself this closes the per-cycle warp-cycle partition.
        for (unsigned wi : pb.resident) {
            if (statusScratch_[wi] != WarpStatus::Issuable ||
                int(wi) == pick) {
                continue;
            }
            ++stats_.arbLossCycles;
            RegionCounters &rc = regionAt(warps_[wi]->currentRegion);
            ++rc.warpCycles;
            ++rc.arbLossCycles;
        }

        // ---- SI: policy-gated subwarp-stall demotion ----
        if (config_.siEnabled && stalled > 0 && live > 0) {
            bool trigger = false;
            switch (config_.trigger) {
              case SelectTrigger::AnyStalled:
                trigger = stalled > 0;
                break;
              case SelectTrigger::HalfStalled:
                trigger = 2 * stalled >= live;
                break;
              case SelectTrigger::AllStalled:
                trigger = stalled == live;
                break;
            }
            // DWS comparator: a split needs a free warp slot in this
            // processing block to host it (see config.dwsEnabled).
            if (trigger && config_.dwsEnabled) {
                unsigned splits_live = 0;
                for (unsigned wi : pb.resident)
                    splits_live += warps_[wi]->tstOccupancy();
                const unsigned free_slots =
                    config_.warpSlotsPerPb > pb.resident.size()
                        ? config_.warpSlotsPerPb -
                              unsigned(pb.resident.size())
                        : 0;
                if (splits_live >= free_slots)
                    trigger = false;
            }

            if (trigger) {
                // Lowest-numbered stalled warp with a READY subwarp.
                for (unsigned wi : pb.resident) {
                    if (statusScratch_[wi] != WarpStatus::ScoreboardStall)
                        continue;
                    Warp &w = *warps_[wi];
                    if (w.readySubwarps().empty())
                        continue;
                    const Instr &in = w.program().at(w.activePc());
                    if (unit_.subwarpStall(w, in.reqSbMask, now)) {
                        tickDirty_ = true;
                        break;
                    }
                }
            }
        }
    }

    // ---- SM-level exposed stall accounting (paper Section I) ----
    if (any_live && issued_total == 0) {
        ++stats_.noIssueCycles;
        if (mem_stalled_warps > 0) {
            ++stats_.exposedLoadStallCycles;
            // Attribute the cycle to divergent code in proportion to
            // the memory-stalled warps whose stalling subwarp is
            // divergent (separates Coll-style convergent stalls).
            stats_.exposedLoadStallCyclesDivergent +=
                double(mem_stalled_divergent) / double(mem_stalled_warps);
        } else if (any_fetch_stall) {
            ++stats_.exposedFetchStallCycles;
        }
    }

    // ---- fast-forward classification (see applyQuietCycles) ----
    // An issuable warp always issues, so issued_total == 0 already
    // implies no warp was Issuable; tickDirty_ covers every other
    // mutation site (writeback drain, retire/admit, fetch initiation,
    // subwarp select, successful stall demotion).
    lastTickQuiet_ = issued_total == 0 && !tickDirty_;
    const Cycle next_event =
        events_.empty() ? invalidCycle : events_.begin()->first;
    nextEventAt_ = std::min(next_wake, next_event);
    ffAnyLive_ = any_live;
    ffMemStalled_ = mem_stalled_warps;
    ffMemStalledDiv_ = mem_stalled_divergent;
    ffAnyFetch_ = any_fetch_stall;
    ffDeniedDelta_ =
        unit_.stats().stallDemotionsDeniedTstFull - denied_before;
}

void
Sm::accountWarpCycles(Warp &w, WarpStatus st, std::uint64_t n)
{
    stats_.liveWarpCycles += n;
    const ThreadMask active_now = w.activeMask();
    if (active_now.empty())
        stats_.warpCyclesSubwarpNone += n;
    else if (active_now == w.live())
        stats_.warpCyclesSubwarpFull += n;
    else
        stats_.warpCyclesSubwarpPartial += n;

    switch (st) {
      case WarpStatus::ScoreboardStall:
      case WarpStatus::WaitWakeup:
        stats_.warpScoreboardStallCycles += n;
        break;
      case WarpStatus::PipeStall:
        stats_.warpPipeStallCycles += n;
        break;
      case WarpStatus::FetchStall:
        stats_.warpFetchStallCycles += n;
        break;
      case WarpStatus::Busy:
        stats_.warpSwitchCycles += n;
        break;
      default:
        break;
    }
    // One per-reason count per lost warp-slot, bucketed by the same
    // classification as the legacy counters above.
    if (st != WarpStatus::Issuable) {
        const StallReason reason = classifyStall(w, st);
        stats_.stallCyclesByReason[std::size_t(reason)] += n;
        RegionCounters &rc = regionAt(w.currentRegion);
        rc.warpCycles += n;
        rc.stallCyclesByReason[std::size_t(reason)] += n;
    }
}

void
Sm::applyQuietCycles(std::uint64_t n)
{
    if (n == 0 || done())
        return;
    stats_.cycles += n;

    // Statuses are stable over the leap: the caller leaps at most to
    // nextEventAt(), and every status either expires at its warp's
    // wakeScratch_ cycle (folded into nextEventAt) or only a writeback
    // (also folded in) can change it. So the per-warp accounting of
    // each skipped cycle equals the last real tick's, n times over.
    for (auto &pb : pbs_) {
        for (unsigned wi : pb.resident) {
            const WarpStatus st = statusScratch_[wi];
            if (st == WarpStatus::Done)
                continue;
            accountWarpCycles(*warps_[wi], st, n);
        }
    }

    // Denied TST-full demotion attempts repeat identically each quiet
    // cycle (nothing can free an entry without a writeback).
    if (ffDeniedDelta_ > 0)
        unit_.addDeniedDemotions(ffDeniedDelta_ * n);

    // SM-level exposure: a quiet tick by definition issued nothing.
    if (ffAnyLive_) {
        stats_.noIssueCycles += n;
        if (ffMemStalled_ > 0) {
            stats_.exposedLoadStallCycles += n;
            if (ffMemStalledDiv_ > 0) {
                // The per-cycle loop accumulates the divergent fraction
                // by repeated IEEE754 addition; n * frac rounds
                // differently, so bit-identity requires repeating the
                // addition. Leaps are latency-bounded, so this stays
                // far cheaper than n full ticks.
                const double frac =
                    double(ffMemStalledDiv_) / double(ffMemStalled_);
                for (std::uint64_t i = 0; i < n; ++i)
                    stats_.exposedLoadStallCyclesDivergent += frac;
            }
        } else if (ffAnyFetch_) {
            stats_.exposedFetchStallCycles += n;
        }
    }
}

std::string
Sm::auditInvariants() const
{
    for (std::size_t wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = *warps_[wi];
        if (w.done())
            continue;
        PendingWbCounts pending{};
        for (const auto &[when, wb] : events_) {
            if (wb.warpIdx != wi)
                continue;
            for (unsigned lane : lanesOf(wb.mask))
                ++pending[lane][wb.sb];
        }
        std::string violation = auditWarpInvariants(w, pending);
        if (!violation.empty()) {
            return "sm" + std::to_string(id_) + " warp " +
                   std::to_string(w.id()) + ": " + violation + "\n" +
                   describeWarpState(w);
        }
    }
    return "";
}

std::string
Sm::dumpState() const
{
    std::string out;
    for (const auto &w : warps_) {
        if (!w->done())
            out += describeWarpState(*w);
    }
    if (!pendingAdmission_.empty()) {
        out += "sm" + std::to_string(id_) + ": " +
               std::to_string(pendingAdmission_.size()) +
               " warps awaiting admission\n";
    }
    return out;
}

std::string
Sm::dropPendingWriteback()
{
    if (events_.empty())
        return "";
    const auto it = events_.begin();
    const Writeback &wb = it->second;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "sm%u warp %u sb%u mask=0x%08x due cycle %llu", id_,
                  warps_[wb.warpIdx]->id(), wb.sb, wb.mask.raw(),
                  static_cast<unsigned long long>(it->first));
    events_.erase(it);
    return buf;
}

SmStats
Sm::liveStats() const
{
    SmStats s = stats_;

    // Retirement is otherwise only observed when a slot is recycled;
    // recount here so warps that finish last are included.
    s.warpsRetired = 0;
    for (const auto &w : warps_) {
        if (w->done())
            ++s.warpsRetired;
    }

    const SubwarpUnitStats &us = unit_.stats();
    s.divergentBranches = us.divergentBranches;
    s.reconvergences = us.reconvergences;
    s.subwarpSelects = us.subwarpSelects;
    s.subwarpStalls = us.subwarpStalls;
    s.subwarpWakeups = us.subwarpWakeups;
    s.subwarpYields = us.subwarpYields;
    s.tstFullDenials = us.stallDemotionsDeniedTstFull;

    s.l1dHits = l1d_.hits();
    s.l1dMisses = l1d_.misses();
    s.l1iHits = l1i_.hits();
    s.l1iMisses = l1i_.misses();

    s.l0iHits = 0;
    s.l0iMisses = 0;
    for (const auto &pb : pbs_) {
        s.l0iHits += pb.l0i.hits();
        s.l0iMisses += pb.l0i.misses();
    }
    return s;
}

void
Sm::finalizeStats()
{
    // Every fold in liveStats() is set-not-add, so finalizing is
    // idempotent and safe after any number of mid-run samples.
    stats_ = liveStats();
}

void
Sm::save(SnapshotWriter &w) const
{
    w.tag(SnapTag::Sm);
    w.u32(id_);
    w.u32(maxResidentPerPb_);

    w.u64(warps_.size());
    for (const auto &warp : warps_)
        warp->save(w);

    w.u64(pendingAdmission_.size());
    for (unsigned idx : pendingAdmission_)
        w.u32(idx);

    w.u64(pbs_.size());
    for (const ProcessingBlock &pb : pbs_) {
        w.tag(SnapTag::Pb);
        pb.l0i.save(w);
        w.u64(pb.resident.size());
        for (unsigned idx : pb.resident)
            w.u32(idx);
        w.u32(pb.regsInUse);
        w.u32(pb.lrrCursor);
        w.u32(std::uint32_t(pb.gtoCurrent));
    }

    // The writeback queue serializes in multimap iteration order, which
    // is insertion order within equal keys — exactly what drain order
    // depends on, so a restored queue drains identically.
    w.u64(events_.size());
    for (const auto &[when, wb] : events_) {
        w.u64(when);
        w.u32(wb.warpIdx);
        w.u32(wb.mask.raw());
        w.u8(wb.sb);
        w.u8(std::uint8_t(wb.port));
    }

    w.u64(mshrFreeAt_.size());
    for (Cycle c : mshrFreeAt_)
        w.u64(c);

    l1d_.save(w);
    l1i_.save(w);
    rtcore_.save(w);
    unit_.save(w);
    stats_.save(w);
}

void
Sm::restore(SnapshotReader &r)
{
    r.tag(SnapTag::Sm);
    const unsigned id = r.u32();
    sim_throw_if(id != id_, ErrorKind::Snapshot,
                 "sm %u: snapshot holds state for sm %u", id_, id);
    maxResidentPerPb_ = r.u32();

    const std::uint64_t num_warps = r.u64();
    sim_throw_if(num_warps != warps_.size(), ErrorKind::Snapshot,
                 "sm %u: snapshot has %llu warps, expected %zu (launch "
                 "mismatch?)",
                 id_, static_cast<unsigned long long>(num_warps),
                 warps_.size());
    for (auto &warp : warps_)
        warp->restore(r);

    pendingAdmission_.clear();
    const std::uint64_t num_pending = r.u64();
    for (std::uint64_t i = 0; i < num_pending; ++i)
        pendingAdmission_.push_back(r.u32());

    const std::uint64_t num_pbs = r.u64();
    sim_throw_if(num_pbs != pbs_.size(), ErrorKind::Snapshot,
                 "sm %u: snapshot has %llu processing blocks, expected "
                 "%zu",
                 id_, static_cast<unsigned long long>(num_pbs),
                 pbs_.size());
    for (ProcessingBlock &pb : pbs_) {
        r.tag(SnapTag::Pb);
        pb.l0i.restore(r);
        pb.resident.resize(r.u64());
        for (unsigned &idx : pb.resident)
            idx = r.u32();
        pb.regsInUse = r.u32();
        pb.lrrCursor = r.u32();
        pb.gtoCurrent = int(std::int32_t(r.u32()));
    }

    events_.clear();
    const std::uint64_t num_events = r.u64();
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const Cycle when = r.u64();
        Writeback wb;
        wb.warpIdx = r.u32();
        wb.mask = ThreadMask(r.u32());
        wb.sb = r.u8();
        wb.port = WbPort(r.u8());
        events_.emplace_hint(events_.end(), when, wb);
    }

    const std::uint64_t num_mshrs = r.u64();
    sim_throw_if(num_mshrs != mshrFreeAt_.size(), ErrorKind::Snapshot,
                 "sm %u: snapshot has %llu MSHRs, expected %zu", id_,
                 static_cast<unsigned long long>(num_mshrs),
                 mshrFreeAt_.size());
    for (Cycle &c : mshrFreeAt_)
        c = r.u64();

    l1d_.restore(r);
    l1i_.restore(r);
    rtcore_.restore(r);
    unit_.restore(r);
    stats_.restore(r);

    statusScratch_.assign(warps_.size(), WarpStatus::Done);
    wakeScratch_.assign(warps_.size(), invalidCycle);

    // Leap scratch is per-tick and never serialized: a resumed run
    // re-derives it on its first tick, before any leap is considered.
    tickDirty_ = false;
    lastTickQuiet_ = false;
    nextEventAt_ = invalidCycle;
    ffAnyLive_ = false;
    ffMemStalled_ = 0;
    ffMemStalledDiv_ = 0;
    ffAnyFetch_ = false;
    ffDeniedDelta_ = 0;
}

} // namespace si
