#include "core/invariants.hh"

#include <cstdarg>
#include <cstdio>
#include <map>

namespace si {

namespace {

const char *
stateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Inactive: return "INACTIVE";
      case ThreadState::Active: return "ACTIVE";
      case ThreadState::Ready: return "READY";
      case ThreadState::Blocked: return "BLOCKED";
      case ThreadState::Stalled: return "STALLED";
    }
    return "?";
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    std::va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

} // namespace

std::string
describeWarpState(const Warp &warp)
{
    std::string out =
        fmt("warp %u (pb %u): live=0x%08x\n", warp.id(), warp.pb(),
            warp.live().raw());

    // One line per (state, pc) subwarp, states in machine order.
    for (ThreadState s : {ThreadState::Active, ThreadState::Ready,
                          ThreadState::Blocked, ThreadState::Stalled}) {
        const ThreadMask lanes = warp.lanesInState(s) & warp.live();
        if (lanes.empty())
            continue;
        std::map<std::uint32_t, ThreadMask> by_pc;
        for (unsigned lane : lanesOf(lanes))
            by_pc[warp.pc(lane)].set(lane);
        for (const auto &[pc, mask] : by_pc) {
            out += fmt("  %-8s pc=%-5u mask=0x%08x", stateName(s), pc,
                       mask.raw());
            if (s == ThreadState::Blocked) {
                const BarIndex b = warp.blockedOn(mask.lowest());
                out += b == barNone ? " bar=?" : fmt(" bar=B%u", b);
            }
            out += "\n";
        }
    }

    for (BarIndex b = 0; b < Warp::numBarriers; ++b) {
        if (warp.barrier(b).any()) {
            out += fmt("  barrier B%-2u participants=0x%08x\n", b,
                       warp.barrier(b).raw());
        }
    }

    const ScoreboardFile &sb = warp.scoreboards();
    for (unsigned s = 0; s < ScoreboardFile::numSb; ++s) {
        ThreadMask outstanding;
        std::uint8_t max_count = 0;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            const std::uint8_t c = sb.count(lane, SbIndex(s));
            if (c) {
                outstanding.set(lane);
                max_count = std::max(max_count, c);
            }
        }
        if (outstanding.any()) {
            out += fmt("  scoreboard sb%u outstanding=0x%08x max=%u\n", s,
                       outstanding.raw(), max_count);
        }
    }

    const auto &tst = warp.tst();
    for (std::size_t i = 0; i < tst.size(); ++i) {
        if (!tst[i].valid)
            continue;
        out += fmt("  tst[%zu] members=0x%08x pc=%u sb=%u count=%u\n", i,
                   tst[i].members.raw(), tst[i].pc, tst[i].sbId,
                   tst[i].sbCount);
    }
    return out;
}

std::string
auditWarpInvariants(const Warp &warp, const PendingWbCounts &pending)
{
    const ThreadMask live = warp.live();

    // State partition over the live mask.
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        const bool is_live = live.test(lane);
        const bool inactive = warp.state(lane) == ThreadState::Inactive;
        if (is_live && inactive)
            return fmt("live lane %u is INACTIVE", lane);
        if (!is_live && !inactive) {
            return fmt("dead lane %u is %s", lane,
                       stateName(warp.state(lane)));
        }
    }

    // The ACTIVE subwarp must be PC-aligned.
    const ThreadMask active = warp.activeMask();
    if (active.any()) {
        const std::uint32_t pc0 = warp.pc(active.lowest());
        for (unsigned lane : lanesOf(active)) {
            if (warp.pc(lane) != pc0) {
                return fmt("ACTIVE subwarp spans pcs %u and %u", pc0,
                           warp.pc(lane));
            }
        }
    }

    // Barrier coverage: a BLOCKED lane must be registered in the
    // barrier it waits on, or reconvergence can never release it.
    for (unsigned lane : lanesOf(warp.lanesInState(ThreadState::Blocked) &
                                 live)) {
        const BarIndex b = warp.blockedOn(lane);
        if (b == barNone || b >= Warp::numBarriers)
            return fmt("BLOCKED lane %u waits on no barrier", lane);
        if (!warp.barrier(b).test(lane)) {
            return fmt("BLOCKED lane %u missing from barrier B%u "
                       "participation mask",
                       lane, b);
        }
    }

    // Scoreboard release balance: counts were incremented at issue and
    // are decremented exactly once per in-flight writeback, so every
    // per-lane count must equal its pending-writeback coverage.
    const ScoreboardFile &sb = warp.scoreboards();
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        for (unsigned s = 0; s < ScoreboardFile::numSb; ++s) {
            const std::uint8_t have = sb.count(lane, SbIndex(s));
            const std::uint32_t expect = pending[lane][s];
            if (have != expect) {
                return fmt("scoreboard release imbalance: lane %u sb%u "
                           "count %u vs %u in-flight writebacks",
                           lane, s, have, expect);
            }
        }
    }

    // TST hygiene.
    const ThreadMask stalled =
        warp.lanesInState(ThreadState::Stalled) & live;
    ThreadMask covered;
    for (std::size_t i = 0; i < warp.tst().size(); ++i) {
        const TstEntry &e = warp.tst()[i];
        if (!e.valid)
            continue;
        const ThreadMask members = e.members & live;
        if ((members & stalled).empty())
            return fmt("tst[%zu] leaked: no live STALLED members", i);
        if ((members & covered).any())
            return fmt("tst[%zu] overlaps another valid entry", i);
        covered |= members;
        if (e.sbId == sbNone || e.sbId >= ScoreboardFile::numSb)
            return fmt("tst[%zu] has no blocking scoreboard", i);
        if (sb.ready(members, std::uint8_t(1u << e.sbId))) {
            return fmt("tst[%zu] missed wakeup: sb%u drained but entry "
                       "still valid",
                       i, e.sbId);
        }
    }
    if ((stalled - covered).any()) {
        return fmt("STALLED lanes 0x%08x not covered by any TST entry",
                   (stalled - covered).raw());
    }

    return "";
}

} // namespace si
