#include "core/warp.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace si {

Warp::Warp(unsigned id, unsigned pb, const Program *program,
           unsigned num_threads)
    : id_(id), pb_(pb), program_(program)
{
    sim_throw_if(program == nullptr, ErrorKind::Config,
                 "warp created without a program");
    sim_throw_if(num_threads == 0 || num_threads > warpSize,
                 ErrorKind::Config, "warp %u: bad thread count %u", id,
                 num_threads);

    regs_.assign(std::size_t(program->numRegs()) * warpSize, 0);
    blockedOn_.fill(barNone);
    live_ = ThreadMask::firstN(num_threads);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        state_[lane] = live_.test(lane) ? ThreadState::Active
                                        : ThreadState::Inactive;
        pc_[lane] = 0;
    }
}

ThreadMask
Warp::lanesInState(ThreadState s) const
{
    ThreadMask m;
    for (unsigned lane : lanesOf(live_)) {
        if (state_[lane] == s)
            m.set(lane);
    }
    return m;
}

std::vector<std::pair<std::uint32_t, ThreadMask>>
Warp::readySubwarps() const
{
    std::vector<std::pair<std::uint32_t, ThreadMask>> groups;
    ThreadMask ready = lanesInState(ThreadState::Ready);
    for (unsigned lane : lanesOf(ready)) {
        const std::uint32_t lane_pc = pc_[lane];
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto &g) {
                                   return g.first == lane_pc;
                               });
        if (it == groups.end())
            groups.emplace_back(lane_pc, ThreadMask::lane(lane));
        else
            it->second.set(lane);
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return groups;
}

unsigned
Warp::tstOccupancy() const
{
    unsigned n = 0;
    for (const auto &e : tst_)
        n += e.valid ? 1 : 0;
    return n;
}

void
Warp::save(SnapshotWriter &w) const
{
    w.tag(SnapTag::Warp);
    w.u32(id_);
    w.u32(pb_);
    w.u32(ctaId);
    w.u32(logicalId);

    w.u64(regs_.size());
    for (std::uint32_t v : regs_)
        w.u32(v);
    for (std::uint8_t p : preds_)
        w.u8(p);
    for (ThreadState s : state_)
        w.u8(std::uint8_t(s));
    for (std::uint32_t pc : pc_)
        w.u32(pc);
    w.u32(live_.raw());
    for (ThreadMask b : barriers_)
        w.u32(b.raw());
    for (BarIndex b : blockedOn_)
        w.u8(b);
    sb_.save(w);

    w.u64(tst_.size());
    for (const TstEntry &e : tst_) {
        w.b(e.valid);
        w.u32(e.members.raw());
        w.u32(e.pc);
        w.u8(e.sbId);
        w.u8(e.sbCount);
    }

    for (Cycle c : regReady_)
        w.u64(c);
    for (Cycle c : predReady_)
        w.u64(c);

    w.u64(issueReadyAt);
    w.b(inFetchStall);
    w.u32(longOpsSinceSwitch);
    w.u32(selectCursor);
    w.u64(lastIssueCycle);
    w.u32(fetchedPc);
    w.u32(currentRegion);
}

void
Warp::restore(SnapshotReader &r)
{
    r.tag(SnapTag::Warp);
    const unsigned id = r.u32();
    sim_throw_if(id != id_, ErrorKind::Snapshot,
                 "warp %u: snapshot holds state for warp %u", id_, id);
    pb_ = r.u32();
    ctaId = r.u32();
    logicalId = r.u32();

    const std::uint64_t num_regs = r.u64();
    sim_throw_if(num_regs != regs_.size(), ErrorKind::Snapshot,
                 "warp %u: snapshot register file has %llu words, "
                 "expected %zu (program mismatch?)",
                 id_, static_cast<unsigned long long>(num_regs),
                 regs_.size());
    for (std::uint32_t &v : regs_)
        v = r.u32();
    for (std::uint8_t &p : preds_)
        p = r.u8();
    for (ThreadState &s : state_)
        s = ThreadState(r.u8());
    for (std::uint32_t &pc : pc_)
        pc = r.u32();
    live_ = ThreadMask(r.u32());
    for (ThreadMask &b : barriers_)
        b = ThreadMask(r.u32());
    for (BarIndex &b : blockedOn_)
        b = r.u8();
    sb_.restore(r);

    tst_.resize(r.u64());
    for (TstEntry &e : tst_) {
        e.valid = r.b();
        e.members = ThreadMask(r.u32());
        e.pc = r.u32();
        e.sbId = r.u8();
        e.sbCount = r.u8();
    }

    for (Cycle &c : regReady_)
        c = r.u64();
    for (Cycle &c : predReady_)
        c = r.u64();

    issueReadyAt = r.u64();
    inFetchStall = r.b();
    longOpsSinceSwitch = r.u32();
    selectCursor = r.u32();
    lastIssueCycle = r.u64();
    fetchedPc = r.u32();
    currentRegion = r.u32();
}

} // namespace si
