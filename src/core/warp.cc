#include "core/warp.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace si {

Warp::Warp(unsigned id, unsigned pb, const Program *program,
           unsigned num_threads)
    : id_(id), pb_(pb), program_(program)
{
    sim_throw_if(program == nullptr, ErrorKind::Config,
                 "warp created without a program");
    sim_throw_if(num_threads == 0 || num_threads > warpSize,
                 ErrorKind::Config, "warp %u: bad thread count %u", id,
                 num_threads);

    regs_.assign(std::size_t(program->numRegs()) * warpSize, 0);
    blockedOn_.fill(barNone);
    live_ = ThreadMask::firstN(num_threads);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        state_[lane] = live_.test(lane) ? ThreadState::Active
                                        : ThreadState::Inactive;
        pc_[lane] = 0;
    }
}

ThreadMask
Warp::lanesInState(ThreadState s) const
{
    ThreadMask m;
    for (unsigned lane : lanesOf(live_)) {
        if (state_[lane] == s)
            m.set(lane);
    }
    return m;
}

std::vector<std::pair<std::uint32_t, ThreadMask>>
Warp::readySubwarps() const
{
    std::vector<std::pair<std::uint32_t, ThreadMask>> groups;
    ThreadMask ready = lanesInState(ThreadState::Ready);
    for (unsigned lane : lanesOf(ready)) {
        const std::uint32_t lane_pc = pc_[lane];
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto &g) {
                                   return g.first == lane_pc;
                               });
        if (it == groups.end())
            groups.emplace_back(lane_pc, ThreadMask::lane(lane));
        else
            it->second.set(lane);
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return groups;
}

unsigned
Warp::tstOccupancy() const
{
    unsigned n = 0;
    for (const auto &e : tst_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace si
