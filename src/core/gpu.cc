#include "core/gpu.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "trace/events.hh"

namespace si {

Gpu::Gpu(const GpuConfig &config, Memory &memory, const Bvh *scene)
    : config_(config), memory_(memory), scene_(scene)
{
    sim_throw_if(config_.numSms == 0, ErrorKind::Config,
                 "GPU needs at least one SM");
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, config_, memory_, scene_));
}

GpuResult
Gpu::run(const Program &program, const LaunchParams &launch)
{
    return runMulti({KernelLaunch{&program, launch}});
}

GpuResult
Gpu::runMulti(const std::vector<KernelLaunch> &kernels)
{
    GpuResult result;
    Cycle now = 0;
    try {
        sim_throw_if(kernels.empty(), ErrorKind::Config,
                     "no kernels to launch");
        unsigned max_warps = 0;
        for (const auto &k : kernels) {
            sim_throw_if(k.program == nullptr, ErrorKind::Config,
                         "kernel without a program");
            k.program->validate();
            sim_throw_if(k.launch.numWarps == 0, ErrorKind::Config,
                         "launch with zero warps");
            sim_throw_if(k.launch.warpsPerCta == 0, ErrorKind::Config,
                         "warpsPerCta must be nonzero");
            max_warps = std::max(max_warps, k.launch.numWarps);
        }

        // Interleave warps across kernels so co-scheduled queues contend
        // for slots from the start, then round-robin across SMs.
        unsigned wid = 0;
        for (unsigned i = 0; i < max_warps; ++i) {
            for (const auto &k : kernels) {
                if (i >= k.launch.numWarps)
                    continue;
                auto warp =
                    std::make_unique<Warp>(wid, 0, k.program, warpSize);
                warp->logicalId = i;
                warp->ctaId = i / k.launch.warpsPerCta;
                sms_[wid % sms_.size()]->addWarp(std::move(warp));
                ++wid;
            }
        }

        // Forward-progress tracking: cycles since the last issue
        // anywhere on the GPU. A long quiet spell is only a livelock
        // when no writeback is in flight — pending events always fire
        // at a bounded future cycle, so a stalled-but-live machine
        // keeps its wakeups queued.
        std::uint64_t last_issued = 0;
        Cycle last_progress = 0;
        while (true) {
            bool all_done = true;
            for (auto &sm : sms_) {
                if (!sm->done()) {
                    all_done = false;
                    break;
                }
            }
            if (all_done)
                break;
            if (now >= config_.maxCycles) {
                result.timedOut = true;
                warn("kernel '%s' hit the %llu-cycle watchdog",
                     kernels.front().program->name().c_str(),
                     static_cast<unsigned long long>(config_.maxCycles));
                result.status = RunStatus::failure(
                    ErrorKind::CycleLimit,
                    "kernel '" + kernels.front().program->name() +
                        "' exceeded the " +
                        std::to_string(config_.maxCycles) + "-cycle cap");
                break;
            }

            if (config_.faultHook)
                (config_.faultHook)(*this, now);

            if (config_.cancelHook &&
                now % config_.cancelCheckInterval == 0 &&
                (config_.cancelHook)()) {
                throw SimError(ErrorKind::WallClock,
                               "run cancelled (wall-clock budget "
                               "exhausted) at cycle " +
                                   std::to_string(now));
            }

            for (auto &sm : sms_)
                sm->tick(now);
            ++now;

            std::uint64_t issued = 0;
            bool events_pending = false;
            for (const auto &sm : sms_) {
                issued += sm->stats().instrsIssued;
                events_pending |= sm->hasPendingWritebacks();
            }
            if (issued != last_issued || events_pending) {
                last_issued = issued;
                last_progress = now;
            } else if (config_.livelockCycles &&
                       now - last_progress >= config_.livelockCycles) {
                std::string dump;
                for (const auto &sm : sms_)
                    dump += sm->dumpState();
                throw SimError(
                    ErrorKind::Livelock,
                    "no instruction issued and no writeback in flight "
                    "for " +
                        std::to_string(now - last_progress) +
                        " cycles (cycle " + std::to_string(now) + ")",
                    dump);
            }

            if (config_.checkInvariants &&
                now % config_.invariantCheckInterval == 0) {
                for (const auto &sm : sms_) {
                    std::string violation = sm->auditInvariants();
                    if (!violation.empty()) {
                        throw SimError(ErrorKind::InvariantViolation,
                                       "invariant audit failed at cycle " +
                                           std::to_string(now),
                                       violation);
                    }
                }
            }
        }
    } catch (const SimError &e) {
        result.status = e.status();
    }

    // Always-on tier: a failed run stamps its timeline with the watchdog
    // verdict, so livelock/deadlock reports come with trace context.
    if (!result.status.ok()) {
        if (TraceSink *sink = config_.traceSink) {
            TraceEvent ev;
            ev.cycle = now;
            ev.arg = std::uint32_t(result.status.kind);
            ev.kind = TraceEventKind::Watchdog;
            sink->record(ev);
        }
    }

    for (auto &sm : sms_) {
        sm->finalizeStats();
        result.perSm.push_back(sm->stats());
        result.total.accumulate(sm->stats());
    }
    result.cycles = result.total.cycles;
    return result;
}

GpuResult
simulate(const GpuConfig &config, Memory &memory, const Program &program,
         const LaunchParams &launch, const Bvh *scene)
{
    try {
        Gpu gpu(config, memory, scene);
        return gpu.run(program, launch);
    } catch (const SimError &e) {
        // Construction-time failures (bad cache geometry, zero SMs)
        // throw before a Gpu exists to absorb them.
        GpuResult result;
        result.status = e.status();
        return result;
    }
}

} // namespace si
