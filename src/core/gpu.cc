#include "core/gpu.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "snapshot/snapshot.hh"
#include "trace/events.hh"

namespace si {

namespace {

/** Smallest multiple of @p step at or after @p now (step != 0). */
Cycle
nextBoundary(Cycle now, std::uint64_t step)
{
    return (now + step - 1) / step * step;
}

void
hashCacheConfig(Fnv1a &h, const CacheConfig &c)
{
    h.update(c.name);
    h.update(c.sizeBytes);
    h.update(std::uint64_t(c.lineBytes));
    h.update(std::uint64_t(c.assoc));
}

} // namespace

std::uint64_t
configFingerprint(const GpuConfig &c)
{
    Fnv1a h;
    h.update(std::uint64_t(c.numSms));
    h.update(std::uint64_t(c.pbsPerSm));
    h.update(std::uint64_t(c.warpSlotsPerPb));
    h.update(std::uint64_t(c.regFilePerPb));
    hashCacheConfig(h, c.l1d);
    hashCacheConfig(h, c.l1i);
    hashCacheConfig(h, c.l0i);
    h.update(c.lat.alu);
    h.update(c.lat.heavyAlu);
    h.update(c.lat.transcendental);
    h.update(c.lat.constLoad);
    h.update(c.lat.l1Hit);
    h.update(c.lat.l1Miss);
    h.update(c.lat.texBase);
    h.update(c.lat.l0iMiss);
    h.update(c.lat.l1iMiss);
    h.update(c.rtc.baseLatency);
    std::uint32_t node_bits;
    std::memcpy(&node_bits, &c.rtc.cyclesPerNode, sizeof(node_bits));
    h.update(std::uint64_t(node_bits));
    h.update(std::uint64_t(c.rtc.numPipes));
    h.update(std::uint64_t(c.numScoreboards));
    h.update(std::uint64_t(c.maxOutstandingMisses));
    h.update(std::uint64_t(c.siEnabled));
    h.update(std::uint64_t(c.yieldEnabled));
    h.update(std::uint64_t(c.yieldThreshold));
    h.update(std::uint64_t(c.trigger));
    h.update(std::uint64_t(c.maxSubwarps));
    h.update(c.switchLatency);
    h.update(std::uint64_t(c.dwsEnabled));
    h.update(std::uint64_t(c.sched));
    h.update(std::uint64_t(c.divergeOrder));
    h.update(c.rngSeed);
    h.update(c.maxCycles);
    h.update(c.livelockCycles);
    h.update(std::uint64_t(c.checkInvariants));
    h.update(c.invariantCheckInterval);
    return h.digest();
}

std::uint64_t
programFingerprint(const Program &p)
{
    Fnv1a h;
    h.update(p.name());
    h.update(std::uint64_t(p.numRegs()));
    h.update(p.sourceText());
    return h.digest();
}

Gpu::Gpu(const GpuConfig &config, Memory &memory, const Bvh *scene)
    : config_(config), memory_(memory), scene_(scene)
{
    sim_throw_if(config_.numSms == 0, ErrorKind::Config,
                 "GPU needs at least one SM");
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, config_, memory_, scene_));
}

GpuResult
Gpu::run(const Program &program, const LaunchParams &launch)
{
    return runMulti({KernelLaunch{&program, launch}});
}

void
Gpu::launchKernels(const std::vector<KernelLaunch> &kernels)
{
    sim_throw_if(kernels.empty(), ErrorKind::Config,
                 "no kernels to launch");
    unsigned max_warps = 0;
    for (const auto &k : kernels) {
        sim_throw_if(k.program == nullptr, ErrorKind::Config,
                     "kernel without a program");
        k.program->validate();
        sim_throw_if(k.launch.numWarps == 0, ErrorKind::Config,
                     "launch with zero warps");
        sim_throw_if(k.launch.warpsPerCta == 0, ErrorKind::Config,
                     "warpsPerCta must be nonzero");
        max_warps = std::max(max_warps, k.launch.numWarps);
    }
    kernels_ = kernels;
    now_ = 0;
    lastIssued_ = 0;
    lastProgress_ = 0;
    ffLeaps_ = 0;
    ffSkipped_ = 0;

    // Interleave warps across kernels so co-scheduled queues contend
    // for slots from the start, then round-robin across SMs.
    unsigned wid = 0;
    for (unsigned i = 0; i < max_warps; ++i) {
        for (const auto &k : kernels) {
            if (i >= k.launch.numWarps)
                continue;
            auto warp =
                std::make_unique<Warp>(wid, 0, k.program, warpSize);
            warp->logicalId = i;
            warp->ctaId = i / k.launch.warpsPerCta;
            sms_[wid % sms_.size()]->addWarp(std::move(warp));
            ++wid;
        }
    }
}

void
Gpu::runLoop(GpuResult &result)
{
    // Forward-progress tracking: cycles since the last issue anywhere
    // on the GPU. A long quiet spell is only a livelock when no
    // writeback is in flight — pending events always fire at a bounded
    // future cycle, so a stalled-but-live machine keeps its wakeups
    // queued. The counters are members so a checkpoint freezes them
    // with the rest of the machine and a resumed run re-enters this
    // loop exactly where the checkpoint left it.
    //
    // Eligibility for the cycle-leap engine is a property of the run
    // (knob + installed observers), not of any cycle: compute it once.
    const bool ff_eligible = fastForwardEligible();
    while (true) {
        bool all_done = true;
        for (auto &sm : sms_) {
            if (!sm->done()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        if (now_ >= config_.maxCycles) {
            result.timedOut = true;
            warn("kernel '%s' hit the %llu-cycle watchdog",
                 kernels_.front().program->name().c_str(),
                 static_cast<unsigned long long>(config_.maxCycles));
            result.status = RunStatus::failure(
                ErrorKind::CycleLimit,
                "kernel '" + kernels_.front().program->name() +
                    "' exceeded the " +
                    std::to_string(config_.maxCycles) + "-cycle cap");
            break;
        }

        // Checkpoint before any other hook mutates or observes state:
        // what save() captures here is exactly what a resumed loop sees
        // on its first iteration.
        if (config_.checkpointHook && config_.checkpointInterval &&
            now_ != 0 && now_ % config_.checkpointInterval == 0) {
            (config_.checkpointHook)(*this, now_);
        }

        // Sample after the checkpoint hook: a snapshot taken at cycle N
        // holds the sampler state from before onCycle(N), and the
        // resumed loop re-fires onCycle(N) exactly once — so a resumed
        // run's window series is bit-identical to an uninterrupted one.
        if (config_.metricsSampler)
            config_.metricsSampler->onCycle(*this, now_);

        if (config_.faultHook)
            (config_.faultHook)(*this, now_);

        if (config_.cancelHook &&
            now_ % config_.cancelCheckInterval == 0 &&
            (config_.cancelHook)()) {
            throw SimError(ErrorKind::WallClock,
                           "run cancelled (wall-clock budget "
                           "exhausted) at cycle " +
                               std::to_string(now_));
        }

        for (auto &sm : sms_)
            sm->tick(now_);
        ++now_;

        std::uint64_t issued = 0;
        bool events_pending = false;
        for (const auto &sm : sms_) {
            issued += sm->stats().instrsIssued;
            events_pending |= sm->hasPendingWritebacks();
        }
        if (issued != lastIssued_ || events_pending) {
            lastIssued_ = issued;
            lastProgress_ = now_;
        }

        // Event-driven fast-forward: when the tick just taken was quiet
        // on every SM, leap straight to the next-event horizon. Runs
        // after the progress update (so the livelock deadline below is
        // final for this quiet spell) and before the livelock and
        // invariant checks (both horizon-pinned, so they observe the
        // same cycles as a per-cycle run).
        maybeFastForward(ff_eligible, events_pending);

        // Livelock check in unconditional form: after a progress update
        // now_ == lastProgress_, so with livelockCycles != 0 this is
        // exactly the old else-branch; after a livelock-bounded leap it
        // trips at the identical cycle the per-cycle run would.
        if (config_.livelockCycles &&
            now_ - lastProgress_ >= config_.livelockCycles) {
            std::string dump;
            for (const auto &sm : sms_)
                dump += sm->dumpState();
            throw SimError(
                ErrorKind::Livelock,
                "no instruction issued and no writeback in flight "
                "for " +
                    std::to_string(now_ - lastProgress_) +
                    " cycles (cycle " + std::to_string(now_) + ")",
                dump);
        }

        if (config_.checkInvariants &&
            now_ % config_.invariantCheckInterval == 0) {
            for (const auto &sm : sms_) {
                std::string violation = sm->auditInvariants();
                if (!violation.empty()) {
                    throw SimError(ErrorKind::InvariantViolation,
                                   "invariant audit failed at cycle " +
                                       std::to_string(now_),
                                   violation);
                }
            }
        }
    }
}

bool
Gpu::fastForwardEligible() const
{
    // A fault hook may mutate state at any cycle; the race sanitizer
    // hooks observe per-access interleavings; a trace sink consuming
    // the per-cycle event tier (StallCycle etc., SI_TRACE builds only)
    // must see every cycle. Any of these pins the run to faithful
    // per-cycle execution.
    return config_.fastForward && !config_.faultHook &&
           !config_.raceHooks &&
           !(SI_TRACE_ENABLED && config_.traceSink &&
             config_.traceSink->wantsPerCycleEvents());
}

void
Gpu::maybeFastForward(bool eligible, bool events_pending)
{
    if (!eligible)
        return;

    // Every SM must have just taken a quiet tick (nothing issued, no
    // state-changing work) for the machine's state to be a pure
    // function of the clock until the earliest wakeup/event. The
    // horizon is the min over those per-SM next-event cycles.
    Cycle horizon = invalidCycle;
    for (const auto &sm : sms_) {
        if (!sm->lastTickQuiet())
            return;
        horizon = std::min(horizon, sm->nextEventAt());
    }

    // Clamp to every cycle the loop itself must observe: the watchdog
    // cap, the livelock deadline (only binding when no writeback is in
    // flight), and each hook/sampler boundary. nextBoundary() returns
    // now_ when now_ is already a boundary, which yields h == now_ and
    // no leap — the hook then fires normally on the next iteration.
    Cycle h = std::min(horizon, config_.maxCycles);
    if (!events_pending && config_.livelockCycles)
        h = std::min(h, lastProgress_ + config_.livelockCycles);
    if (config_.checkpointHook && config_.checkpointInterval)
        h = std::min(h, nextBoundary(now_, config_.checkpointInterval));
    if (config_.metricsSampler)
        h = std::min(h, config_.metricsSampler->horizonPin(now_));
    if (config_.cancelHook && config_.cancelCheckInterval)
        h = std::min(h, nextBoundary(now_, config_.cancelCheckInterval));
    if (config_.checkInvariants && config_.invariantCheckInterval)
        h = std::min(h,
                     nextBoundary(now_, config_.invariantCheckInterval));
    if (h == invalidCycle || h <= now_)
        return;

    const std::uint64_t n = h - now_;
    for (auto &sm : sms_)
        sm->applyQuietCycles(n);
    now_ = h;

    // With a writeback in flight every skipped iteration would have
    // taken the progress branch; replicate its final effect. (Without
    // one, lastProgress_ stays put — exactly as per-cycle execution
    // would leave it.)
    if (events_pending)
        lastProgress_ = now_;

    ++ffLeaps_;
    ffSkipped_ += n;
}

void
Gpu::finalize(GpuResult &result)
{
    // Always-on tier: a failed run stamps its timeline with the watchdog
    // verdict, so livelock/deadlock reports come with trace context.
    if (!result.status.ok()) {
        if (TraceSink *sink = config_.traceSink) {
            TraceEvent ev;
            ev.cycle = now_;
            ev.arg = std::uint32_t(result.status.kind);
            ev.kind = TraceEventKind::Watchdog;
            sink->record(ev);
        }
    }

    if (config_.metricsSampler)
        config_.metricsSampler->finish(*this, now_);

    for (auto &sm : sms_) {
        sm->finalizeStats();
        result.perSm.push_back(sm->stats());
        result.total.accumulate(sm->stats());
    }
    result.cycles = result.total.cycles;
}

GpuResult
Gpu::runMulti(const std::vector<KernelLaunch> &kernels)
{
    GpuResult result;
    try {
        launchKernels(kernels);
        runLoop(result);
    } catch (const SimError &e) {
        result.status = e.status();
    }
    finalize(result);
    return result;
}

GpuResult
Gpu::resumeMulti(const std::vector<KernelLaunch> &kernels,
                 SnapshotReader &reader)
{
    GpuResult result;
    try {
        launchKernels(kernels);
        restore(reader);
        runLoop(result);
    } catch (const SimError &e) {
        result.status = e.status();
    }
    finalize(result);
    return result;
}

void
Gpu::save(SnapshotWriter &w) const
{
    w.tag(SnapTag::Meta);
    w.u64(configFingerprint(config_));
    w.u64(kernels_.size());
    for (const KernelLaunch &k : kernels_) {
        w.str(k.program->name());
        w.u64(programFingerprint(*k.program));
        w.u32(k.launch.numWarps);
        w.u32(k.launch.warpsPerCta);
    }

    w.tag(SnapTag::Clock);
    w.u64(now_);
    w.u64(lastIssued_);
    w.u64(lastProgress_);

    memory_.save(w);

    w.u64(sms_.size());
    for (const auto &sm : sms_)
        sm->save(w);

    // Sampler presence is part of the format: restoring under a
    // different sampler setup would silently desynchronize the window
    // series, so mismatches fail loudly instead.
    w.tag(SnapTag::Metrics);
    w.b(config_.metricsSampler != nullptr);
    if (config_.metricsSampler)
        config_.metricsSampler->save(w);

    w.tag(SnapTag::End);
}

void
Gpu::restore(SnapshotReader &r)
{
    r.tag(SnapTag::Meta);
    const std::uint64_t cfg_fp = r.u64();
    sim_throw_if(cfg_fp != configFingerprint(config_), ErrorKind::Snapshot,
                 "checkpoint was taken under a different configuration "
                 "(fingerprint %016llx, ours %016llx)",
                 static_cast<unsigned long long>(cfg_fp),
                 static_cast<unsigned long long>(
                     configFingerprint(config_)));
    const std::uint64_t num_kernels = r.u64();
    sim_throw_if(num_kernels != kernels_.size(), ErrorKind::Snapshot,
                 "checkpoint has %llu kernels, launch has %zu",
                 static_cast<unsigned long long>(num_kernels),
                 kernels_.size());
    for (const KernelLaunch &k : kernels_) {
        const std::string name = r.str();
        const std::uint64_t prog_fp = r.u64();
        const unsigned num_warps = r.u32();
        const unsigned warps_per_cta = r.u32();
        sim_throw_if(name != k.program->name() ||
                         prog_fp != programFingerprint(*k.program) ||
                         num_warps != k.launch.numWarps ||
                         warps_per_cta != k.launch.warpsPerCta,
                     ErrorKind::Snapshot,
                     "checkpoint kernel '%s' does not match launched "
                     "kernel '%s' (program or geometry changed since "
                     "the checkpoint)",
                     name.c_str(), k.program->name().c_str());
    }

    r.tag(SnapTag::Clock);
    now_ = r.u64();
    lastIssued_ = r.u64();
    lastProgress_ = r.u64();

    memory_.restore(r);

    const std::uint64_t num_sms = r.u64();
    sim_throw_if(num_sms != sms_.size(), ErrorKind::Snapshot,
                 "checkpoint has %llu SMs, machine has %zu",
                 static_cast<unsigned long long>(num_sms), sms_.size());
    for (auto &sm : sms_)
        sm->restore(r);

    r.tag(SnapTag::Metrics);
    const bool has_sampler = r.b();
    sim_throw_if(has_sampler != (config_.metricsSampler != nullptr),
                 ErrorKind::Snapshot,
                 "checkpoint was taken with a metrics sampler %s but the "
                 "resuming run has one %s",
                 has_sampler ? "installed" : "absent",
                 config_.metricsSampler ? "installed" : "absent");
    if (config_.metricsSampler)
        config_.metricsSampler->restore(r);

    r.tag(SnapTag::End);
    r.expectEnd();
}

GpuResult
simulate(const GpuConfig &config, Memory &memory, const Program &program,
         const LaunchParams &launch, const Bvh *scene)
{
    try {
        Gpu gpu(config, memory, scene);
        return gpu.run(program, launch);
    } catch (const SimError &e) {
        // Construction-time failures (bad cache geometry, zero SMs)
        // throw before a Gpu exists to absorb them.
        GpuResult result;
        result.status = e.status();
        return result;
    }
}

} // namespace si
