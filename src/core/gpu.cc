#include "core/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace si {

Gpu::Gpu(const GpuConfig &config, Memory &memory, const Bvh *scene)
    : config_(config), memory_(memory), scene_(scene)
{
    fatal_if(config_.numSms == 0, "GPU needs at least one SM");
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, config_, memory_, scene_));
}

GpuResult
Gpu::run(const Program &program, const LaunchParams &launch)
{
    return runMulti({KernelLaunch{&program, launch}});
}

GpuResult
Gpu::runMulti(const std::vector<KernelLaunch> &kernels)
{
    fatal_if(kernels.empty(), "no kernels to launch");
    unsigned max_warps = 0;
    for (const auto &k : kernels) {
        panic_if(k.program == nullptr, "kernel without a program");
        k.program->validate();
        fatal_if(k.launch.numWarps == 0, "launch with zero warps");
        fatal_if(k.launch.warpsPerCta == 0, "warpsPerCta must be nonzero");
        max_warps = std::max(max_warps, k.launch.numWarps);
    }

    // Interleave warps across kernels so co-scheduled queues contend
    // for slots from the start, then round-robin across SMs.
    unsigned wid = 0;
    for (unsigned i = 0; i < max_warps; ++i) {
        for (const auto &k : kernels) {
            if (i >= k.launch.numWarps)
                continue;
            auto warp =
                std::make_unique<Warp>(wid, 0, k.program, warpSize);
            warp->logicalId = i;
            warp->ctaId = i / k.launch.warpsPerCta;
            sms_[wid % sms_.size()]->addWarp(std::move(warp));
            ++wid;
        }
    }

    GpuResult result;
    Cycle now = 0;
    while (true) {
        bool all_done = true;
        for (auto &sm : sms_) {
            if (!sm->done()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        if (now >= config_.maxCycles) {
            result.timedOut = true;
            warn("kernel '%s' hit the %llu-cycle watchdog",
                 kernels.front().program->name().c_str(),
                 static_cast<unsigned long long>(config_.maxCycles));
            break;
        }
        for (auto &sm : sms_)
            sm->tick(now);
        ++now;
    }

    for (auto &sm : sms_) {
        sm->finalizeStats();
        result.perSm.push_back(sm->stats());
        result.total.accumulate(sm->stats());
    }
    result.cycles = result.total.cycles;
    return result;
}

GpuResult
simulate(const GpuConfig &config, Memory &memory, const Program &program,
         const LaunchParams &launch, const Bvh *scene)
{
    Gpu gpu(config, memory, scene);
    return gpu.run(program, launch);
}

} // namespace si
