/**
 * @file
 * Warp-state diagnostics and invariant audits for the fault-tolerance
 * layer. describeWarpState() renders the full divergence machinery of a
 * warp (per-subwarp PCs, state masks, barrier participation, scoreboard
 * counts, TST entries) for watchdog and deadlock reports;
 * auditWarpInvariants() is the opt-in GpuConfig::checkInvariants pass
 * that catches silent state corruption (Accel-Sim-style drift) before it
 * turns into a hang or a wrong result.
 */

#ifndef SI_CORE_INVARIANTS_HH
#define SI_CORE_INVARIANTS_HH

#include <array>
#include <string>

#include "core/warp.hh"

namespace si {

/**
 * Outstanding-writeback coverage for one warp: pending[lane][sb] counts
 * in-flight writeback events that will decrement scoreboard sb of lane.
 * The Sm computes this from its event queue when auditing.
 */
using PendingWbCounts =
    std::array<std::array<std::uint32_t, ScoreboardFile::numSb>, warpSize>;

/**
 * Human-readable dump of one warp's scheduling state: live mask, one
 * line per (state, pc) subwarp, barrier participation, nonzero
 * scoreboard counts, and valid TST entries.
 */
std::string describeWarpState(const Warp &warp);

/**
 * Audit one warp's invariants:
 *  - state partition: dead lanes INACTIVE, live lanes not INACTIVE;
 *  - the ACTIVE subwarp shares a single PC;
 *  - BLOCKED lanes are registered participants of the barrier they
 *    block on (mask coverage at reconvergence);
 *  - scoreboard release balance: every per-lane count matches the
 *    in-flight writebacks that will drain it;
 *  - TST hygiene: every STALLED lane belongs to exactly one valid entry
 *    (disjointness + coverage), no valid entry without live STALLED
 *    members (entry leak), no valid entry whose scoreboard has already
 *    drained (missed wakeup).
 *
 * @return empty string when clean, else a one-line violation report.
 */
std::string auditWarpInvariants(const Warp &warp,
                                const PendingWbCounts &pending);

} // namespace si

#endif // SI_CORE_INVARIANTS_HH
