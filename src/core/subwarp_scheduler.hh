/**
 * @file
 * SubwarpUnit: the divergence-handling logic of a Turing-like SM plus
 * the Subwarp Interleaving extensions (paper Section III).
 *
 * Baseline transitions (Figure 7, black): divergence on a branch leaves
 * one subwarp ACTIVE and moves the rest to READY; BSYNC blocks a subwarp
 * until every barrier participant has arrived (or exited); subwarp-select
 * promotes a READY subwarp when nothing is ACTIVE.
 *
 * SI additions (Figure 7, color): subwarp-stall demotes the ACTIVE
 * subwarp to STALLED on a load-to-use stall, recording the blocking
 * scoreboard in a thread status table entry; subwarp-wakeup returns
 * STALLED threads to READY when the scoreboard drains; subwarp-yield
 * eagerly relinquishes the slot after issuing long-latency work.
 */

#ifndef SI_CORE_SUBWARP_SCHEDULER_HH
#define SI_CORE_SUBWARP_SCHEDULER_HH

#include <cstdint>

#include "common/rng.hh"
#include "core/config.hh"
#include "core/warp.hh"
#include "trace/events.hh"

namespace si {

/** Counters the unit maintains; aggregated into SmStats. */
struct SubwarpUnitStats
{
    std::uint64_t divergentBranches = 0;
    std::uint64_t reconvergences = 0;
    std::uint64_t subwarpSelects = 0;
    std::uint64_t subwarpStalls = 0;
    std::uint64_t subwarpWakeups = 0;
    std::uint64_t subwarpYields = 0;
    std::uint64_t barrierReleasesOnExit = 0;
    std::uint64_t stallDemotionsDeniedTstFull = 0;
};

/**
 * Divergence handling + subwarp scheduler for one SM. Stateless across
 * warps except for policy config, RNG, and statistics, so a single
 * instance serves all processing blocks of an SM.
 */
class SubwarpUnit
{
  public:
    /** @param sm_id host SM index, stamped into emitted trace events. */
    SubwarpUnit(const GpuConfig &config, std::uint64_t rng_seed,
                unsigned sm_id = 0);

    /**
     * Record a divergent branch: the ACTIVE subwarp of @p warp split
     * into @p taken (continuing at @p taken_pc) and the rest
     * (continuing at @p fallthrough_pc). One side stays ACTIVE per the
     * configured DivergeOrder; the other becomes READY.
     */
    void diverge(Warp &warp, ThreadMask taken, std::uint32_t taken_pc,
                 std::uint32_t fallthrough_pc, std::int8_t stall_hint = 0,
                 Cycle now = 0);

    /**
     * The ACTIVE subwarp executed BSYNC @p bar at @p sync_pc.
     * @return true when the barrier converged (all participants resume
     *         together past the BSYNC); false when the subwarp blocked,
     *         in which case a READY subwarp is selected if available.
     */
    bool arriveBsync(Warp &warp, BarIndex bar, std::uint32_t sync_pc,
                     Cycle now);

    /**
     * Lanes in @p kill (a subset of the ACTIVE subwarp) executed EXIT.
     * Kills the lanes, releases any barrier whose surviving
     * participants are all blocked, and selects a successor subwarp
     * when no ACTIVE lane survives.
     */
    void exitLanes(Warp &warp, ThreadMask kill, Cycle now);

    /**
     * SI subwarp-stall: demote the ACTIVE subwarp (stalled on the
     * scoreboards in @p req_mask) to STALLED and select a READY
     * successor. Fails when SI is off, no READY subwarp exists, or all
     * TST entries are occupied (the binning limit of Section V-C-3).
     * @return true when the demotion happened.
     */
    bool subwarpStall(Warp &warp, std::uint8_t req_mask, Cycle now);

    /**
     * SI subwarp-yield: move the ACTIVE subwarp to READY and select a
     * different READY subwarp. @return true when a switch happened.
     */
    bool subwarpYield(Warp &warp, Cycle now);

    /**
     * Scoreboard writeback broadcast (Figure 8b): decrement matching
     * TST entries of @p warp and wake entries whose dependences have
     * fully drained.
     */
    void wakeup(Warp &warp, SbIndex sb, Cycle now = 0);

    /**
     * Promote a READY subwarp to ACTIVE when nothing is ACTIVE.
     * Round-robin across READY PCs; charges the subwarp switch latency.
     * @param avoid_pc optional PC to avoid (yield semantics).
     * @return true when a subwarp was activated.
     */
    bool select(Warp &warp, Cycle now,
                std::uint32_t avoid_pc = 0xffffffffu);

    const SubwarpUnitStats &stats() const { return stats_; }

    /**
     * Fast-forward back-fill: credit @p n TST-full demotion denials
     * without re-running the denied subwarpStall() attempts. During a
     * quiet cycle every denied attempt repeats identically (the TST
     * cannot drain without a writeback), so the leap engine replays the
     * per-tick denial delta as an exact multiple (see Sm::
     * applyQuietCycles).
     */
    void addDeniedDemotions(std::uint64_t n)
    {
        stats_.stallDemotionsDeniedTstFull += n;
    }

    /** Serialize the RNG stream position and the stat counters. */
    void
    save(SnapshotWriter &w) const
    {
        w.tag(SnapTag::SubwarpUnit);
        for (std::uint64_t s : rng_.state())
            w.u64(s);
        w.u64(stats_.divergentBranches);
        w.u64(stats_.reconvergences);
        w.u64(stats_.subwarpSelects);
        w.u64(stats_.subwarpStalls);
        w.u64(stats_.subwarpWakeups);
        w.u64(stats_.subwarpYields);
        w.u64(stats_.barrierReleasesOnExit);
        w.u64(stats_.stallDemotionsDeniedTstFull);
    }

    /** Restore state serialized by save(). */
    void
    restore(SnapshotReader &r)
    {
        r.tag(SnapTag::SubwarpUnit);
        std::array<std::uint64_t, 4> s;
        for (std::uint64_t &word : s)
            word = r.u64();
        rng_.setState(s);
        stats_.divergentBranches = r.u64();
        stats_.reconvergences = r.u64();
        stats_.subwarpSelects = r.u64();
        stats_.subwarpStalls = r.u64();
        stats_.subwarpWakeups = r.u64();
        stats_.subwarpYields = r.u64();
        stats_.barrierReleasesOnExit = r.u64();
        stats_.stallDemotionsDeniedTstFull = r.u64();
    }

  private:
    /** Release barrier @p bar of @p warp: all live participants resume. */
    void releaseBarrier(Warp &warp, BarIndex bar, Cycle now);

    /** Trace event stamped with this unit's SM and @p warp's identity. */
    TraceEvent
    makeEvent(const Warp &warp, TraceEventKind kind, Cycle now,
              std::uint32_t pc = 0, std::uint32_t mask = 0,
              std::uint32_t mask2 = 0, std::uint32_t arg = 0) const
    {
        TraceEvent ev;
        ev.cycle = now;
        ev.pc = pc;
        ev.mask = mask;
        ev.mask2 = mask2;
        ev.arg = arg;
        ev.warpId = std::uint16_t(warp.id());
        ev.smId = std::uint8_t(smId_);
        ev.pb = std::uint8_t(warp.pb());
        ev.kind = kind;
        return ev;
    }

    const GpuConfig &config_;
    Rng rng_;
    unsigned smId_;
    SubwarpUnitStats stats_;
};

} // namespace si

#endif // SI_CORE_SUBWARP_SCHEDULER_HH
