/**
 * @file
 * Count-based scoreboards (Section III-C). The paper's SI design
 * replicates the per-warp counter set per subwarp/thread to avoid
 * aliasing across subwarps; we model the extreme point — per-thread
 * counters — for both the baseline and SI so the two modes consume
 * identical functional semantics (DESIGN.md documents this choice).
 */

#ifndef SI_CORE_SCOREBOARD_HH
#define SI_CORE_SCOREBOARD_HH

#include <array>
#include <cstdint>

#include "common/thread_mask.hh"
#include "common/types.hh"
#include "snapshot/snapshot.hh"

namespace si {

/** Writeback path that broadcasts a scoreboard release (Figure 8b). */
enum class WbPort : std::uint8_t { Lsu, Tex };

/**
 * Per-warp file of count-based scoreboards, replicated per thread.
 * A counter is incremented when a lane issues a long-latency operation
 * tagged &wr=sbN and decremented when that operation writes back.
 * Consumers tagged &req=sbN stall until the counter reads zero.
 */
class ScoreboardFile
{
  public:
    static constexpr unsigned numSb = 8;

    ScoreboardFile() { clear(); }

    void
    clear()
    {
        for (auto &lane : counts_)
            lane.fill(0);
    }

    /** Increment scoreboard @p sb for every lane in @p mask. */
    void
    incr(ThreadMask mask, SbIndex sb)
    {
        for (unsigned lane : lanesOf(mask))
            ++counts_[lane][sb];
    }

    /** Decrement scoreboard @p sb for every lane in @p mask. */
    void
    decr(ThreadMask mask, SbIndex sb)
    {
        for (unsigned lane : lanesOf(mask)) {
            if (counts_[lane][sb] > 0)
                --counts_[lane][sb];
        }
    }

    /** Current count for one lane. */
    std::uint8_t
    count(unsigned lane, SbIndex sb) const
    {
        return counts_[lane][sb];
    }

    /**
     * True when every scoreboard in @p req_mask reads zero for every
     * lane in @p mask — the issue condition for a &req consumer.
     */
    bool
    ready(ThreadMask mask, std::uint8_t req_mask) const
    {
        if (!req_mask)
            return true;
        for (unsigned lane : lanesOf(mask)) {
            for (unsigned sb = 0; sb < numSb; ++sb) {
                if ((req_mask & (1u << sb)) && counts_[lane][sb] != 0)
                    return false;
            }
        }
        return true;
    }

    /**
     * The first scoreboard in @p req_mask that is still outstanding for
     * @p mask, or sbNone when all are clear. Used to fill the TST's
     * "Scbd ID" field on a subwarp-stall.
     */
    SbIndex
    firstBlocking(ThreadMask mask, std::uint8_t req_mask) const
    {
        for (unsigned sb = 0; sb < numSb; ++sb) {
            if (!(req_mask & (1u << sb)))
                continue;
            for (unsigned lane : lanesOf(mask)) {
                if (counts_[lane][sb] != 0)
                    return SbIndex(sb);
            }
        }
        return sbNone;
    }

    /** Max outstanding count of @p sb across @p mask (TST count field). */
    std::uint8_t
    maxCount(ThreadMask mask, SbIndex sb) const
    {
        std::uint8_t m = 0;
        for (unsigned lane : lanesOf(mask))
            m = std::max(m, counts_[lane][sb]);
        return m;
    }

    /** Serialize every per-lane counter (fixed 32x8 layout, untagged:
     *  embedded in the owning warp's section). */
    void
    save(SnapshotWriter &w) const
    {
        for (const auto &lane : counts_)
            for (std::uint8_t c : lane)
                w.u8(c);
    }

    /** Restore counters serialized by save(). */
    void
    restore(SnapshotReader &r)
    {
        for (auto &lane : counts_)
            for (std::uint8_t &c : lane)
                c = r.u8();
    }

  private:
    std::array<std::array<std::uint8_t, numSb>, warpSize> counts_;
};

} // namespace si

#endif // SI_CORE_SCOREBOARD_HH
