/**
 * @file
 * Simulator configuration: the Table I architecture parameters, the SI
 * policy knobs from Sections III and V, and the timing constants of the
 * fixed-latency memory stub.
 */

#ifndef SI_CORE_CONFIG_HH
#define SI_CORE_CONFIG_HH

#include <functional>

#include "common/thread_mask.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "rtcore/rtcore.hh"

namespace si {

class Gpu;
class RaceHooks;
class TraceSink;
class SnapshotWriter;
class SnapshotReader;

/**
 * Abstract per-cycle metrics observer, installed via
 * GpuConfig::metricsSampler. The run loop calls onCycle() at the top of
 * every iteration (a cycle boundary: no SM has ticked yet, matching the
 * checkpoint hook's firing point) and finish() once after the loop
 * ends. The interface lives here, not in src/metrics, so the core never
 * depends on the metrics layer; MetricsSampler (metrics/sampler.hh) is
 * the in-tree implementation. Samplers are read-only observers — they
 * must not mutate machine state — and participate in checkpoints
 * through save()/restore() (the SnapTag::Metrics section), so a
 * resumed run reproduces the exact window series of an uninterrupted
 * one.
 */
class CycleSampler
{
  public:
    virtual ~CycleSampler() = default;

    /** Called at the top of every run-loop iteration. */
    virtual void onCycle(const Gpu &gpu, Cycle now) = 0;

    /** Called once after the run loop ends; flushes the open window. */
    virtual void finish(const Gpu &gpu, Cycle now) = 0;

    /**
     * Latest cycle the fast-forward engine may leap to without this
     * sampler observing an intermediate boundary (see DESIGN.md, the
     * event-horizon contract). A sampler that needs onCycle() at every
     * window edge returns the next edge at or after @p now; returning
     * @p now pins the horizon and disables leaping entirely — the safe
     * default for samplers the core knows nothing about. Returning
     * invalidCycle imposes no constraint.
     */
    virtual Cycle horizonPin(Cycle now) const { return now; }

    /** Serialize sampler state into a checkpoint. */
    virtual void save(SnapshotWriter &w) const = 0;

    /** Restore state serialized by save(). */
    virtual void restore(SnapshotReader &r) = 0;
};

/**
 * Optional per-cycle hook called before the SMs tick. The fault-injection
 * harness (src/fault) uses it to corrupt machine state at a chosen cycle;
 * the watchdog and invariant checker must then catch the damage.
 */
using FaultHook = std::function<void(Gpu &, Cycle)>;

/**
 * Optional cancellation poll, checked every cancelCheckInterval cycles.
 * Returning true aborts the run with ErrorKind::WallClock — the
 * mechanism behind runWorkloadSafe()'s wall-clock timeout.
 */
using CancelHook = std::function<bool()>;

/**
 * Optional checkpoint hook, fired every checkpointInterval cycles at the
 * top of the run loop — a cycle boundary where no SM has ticked yet, so
 * Gpu::save() captures a state the resume path can re-enter bit-exactly.
 * The campaign runner uses it for periodic auto-checkpoints; the
 * determinism validator uses it to freeze a mid-run state to replay.
 */
using CheckpointHook = std::function<void(const Gpu &, Cycle)>;

/**
 * When subwarp-select may demote a stalled ACTIVE subwarp, expressed as
 * the paper's knob over N = fraction of stalled warps among live warps
 * in a processing block (Section III-C-3).
 */
enum class SelectTrigger {
    AnyStalled,  ///< N > 0: any live warp stalled
    HalfStalled, ///< N >= 0.5: at least half of the live warps stalled
    AllStalled,  ///< N = 1: every live warp stalled
};

/** Warp scheduler arbitration policy. */
enum class SchedPolicy {
    LRR, ///< loose round-robin
    GTO, ///< greedy-then-oldest
};

/**
 * Which side of a divergent branch keeps executing (Discussion point 3:
 * subwarp execution order matters and could be randomized).
 */
enum class DivergeOrder {
    NotTakenFirst,  ///< fall-through path stays ACTIVE (compiler default)
    TakenFirst,     ///< taken path stays ACTIVE
    Random,         ///< randomized per divergence event
    HintStallFirst, ///< software stall hints pick the side (Discussion
                    ///< item 3 + isa/stall_hints.hh); falls back to
                    ///< NotTakenFirst on unhinted branches
};

/** Fixed-latency timing constants. */
struct LatencyConfig
{
    Cycle alu = 4;            ///< short ALU result latency
    Cycle heavyAlu = 5;       ///< IMUL/IMAD/FFMA
    Cycle transcendental = 16;///< FRCP/FSQRT
    Cycle constLoad = 8;      ///< LDC
    Cycle l1Hit = 32;         ///< LDG hitting in L1D
    Cycle l1Miss = 600;       ///< the paper's swept parameter {300,600,900}
    Cycle texBase = 40;       ///< texture pipe cost added to the L1D path
    Cycle l0iMiss = 20;       ///< L0I miss, L1I hit
    Cycle l1iMiss = 120;      ///< L0I and L1I miss
};

/** Full GPU configuration (defaults = the paper's Turing-like baseline). */
struct GpuConfig
{
    // ---- Table I architecture parameters ----
    unsigned numSms = 2;
    unsigned pbsPerSm = 4;
    unsigned warpSlotsPerPb = 8;

    /** 32-bit registers per processing block (64K per SM / 4 PBs). */
    unsigned regFilePerPb = 16384;

    CacheConfig l1d{"l1d", 128 * 1024, 128, 8};
    CacheConfig l1i{"l1i", 64 * 1024, 128, 8};
    CacheConfig l0i{"l0i", 16 * 1024, 128, 4};

    LatencyConfig lat;
    RtCoreConfig rtc;

    /** Count-based scoreboards per warp. */
    unsigned numScoreboards = 8;

    /**
     * Outstanding L1D misses an SM can sustain (0 = unlimited, the
     * paper's stub model). Nonzero values bound memory-level
     * parallelism: further misses queue behind a free MSHR, which is
     * the headwind SI's extra in-flight loads run into on a real
     * memory system (ablation knob, not a paper parameter).
     */
    unsigned maxOutstandingMisses = 0;

    // ---- Subwarp Interleaving knobs (Section III) ----

    /** Master enable: false = baseline SIMT serialization. */
    bool siEnabled = false;

    /** Enable subwarp-yield ("Both" configurations in Section V). */
    bool yieldEnabled = false;

    /** Long-latency issues since activation before an auto-yield. */
    unsigned yieldThreshold = 2;

    /** Policy knob for when subwarp-select may fire. */
    SelectTrigger trigger = SelectTrigger::HalfStalled;

    /** Thread status table entries == max concurrently stalled subwarps. */
    unsigned maxSubwarps = 32;

    /** Fixed subwarp switch cost (Section III-C-3). */
    Cycle switchLatency = 6;

    /**
     * Dynamic Warp Subdivision comparator (Meng et al., ISCA 2010 —
     * the paper's Related Work VII-B). Approximated on this
     * infrastructure as: stalled subwarps may be demoted only while a
     * *free warp slot* exists in the processing block to host the
     * split (DWS forks divergent subwarps into real warp slots), with
     * no subwarp switch latency (each split occupies its own slot) and
     * no TST budget. Use harness withDws() to build a DWS config.
     */
    bool dwsEnabled = false;

    /**
     * Event-driven fast-forward ("cycle leap"): when a tick ends with
     * no issuable warp and no state-changing work pending before a
     * known future cycle, advance the clock to the next-event horizon
     * in one step, bulk-applying the per-cycle accounting as exact
     * multiples. Every stat, metrics window, snapshot, and golden
     * table is bit-identical to the per-cycle run, so this is a pure
     * wall-clock optimization and is on by default. Automatically
     * pinned back to per-cycle ("faithful") execution when an observer
     * that needs every cycle is attached: a fault-injection hook, the
     * race sanitizer, or (in SI_TRACE builds) a trace sink consuming
     * the per-cycle event tier. Excluded from configFingerprint —
     * timing-neutral by construction, so snapshots transfer across
     * modes.
     */
    bool fastForward = true;

    // ---- scheduling policies ----
    SchedPolicy sched = SchedPolicy::GTO;
    DivergeOrder divergeOrder = DivergeOrder::NotTakenFirst;
    std::uint64_t rngSeed = 1;

    // ---- fault tolerance (forward progress, audits, injection) ----

    /**
     * Runaway cap: fail the run with ErrorKind::CycleLimit when the
     * kernel exceeds this many cycles (it keeps issuing but never
     * finishes — e.g. an infinite loop).
     */
    std::uint64_t maxCycles = 200'000'000;

    /**
     * Forward-progress watchdog: when no instruction retires anywhere on
     * the GPU for this many consecutive cycles *and* no writeback is in
     * flight, nothing can ever wake the machine — fail the run with
     * ErrorKind::Livelock and a full state dump. Legitimate long stalls
     * (misses queued behind MSHRs, RT queries) always have a pending
     * writeback, so they do not trip this. Must exceed every fixed
     * latency (switch, fetch, transcendental); 0 disables.
     */
    std::uint64_t livelockCycles = 50'000;

    /**
     * Opt-in invariant checker: every invariantCheckInterval cycles,
     * audit scoreboard release balance against in-flight writebacks,
     * thread-status-table entry leaks, and per-lane state/mask
     * discipline. A violation fails the run with
     * ErrorKind::InvariantViolation instead of drifting silently.
     */
    bool checkInvariants = false;
    std::uint64_t invariantCheckInterval = 1024;

    /** Fault-injection hook, called once per cycle (null = disabled). */
    FaultHook faultHook;

    /** Cancellation poll for wall-clock budgets (null = disabled). */
    CancelHook cancelHook;
    std::uint64_t cancelCheckInterval = 8192;

    /** Checkpoint hook (null = disabled; see CheckpointHook). */
    CheckpointHook checkpointHook;

    /** Cycles between checkpointHook firings (0 = disabled). */
    std::uint64_t checkpointInterval = 0;

    /**
     * Trace event consumer (null = tracing off). Non-owning; must
     * outlive the run. Receives the typed event stream defined in
     * trace/events.hh — instruction issues, subwarp state transitions,
     * cache traffic, stall attribution, watchdog and fault-injection
     * events — each stamped with cycle/SM/PB/warp. The always-on tier
     * (Issue/WarpRetire/Watchdog/FaultInject) fires in every build;
     * the rest compile out with -DSI_TRACE=OFF.
     */
    TraceSink *traceSink = nullptr;

    /**
     * Windowed metrics sampler (null = off). Non-owning; must outlive
     * the run. Called every cycle before the SMs tick; see CycleSampler.
     * Excluded from configFingerprint like the other hooks — sampling
     * never perturbs the simulation.
     */
    CycleSampler *metricsSampler = nullptr;

    /**
     * Dynamic race sanitizer (null = off). Non-owning; must outlive the
     * run. Receives every global-memory access at issue time plus the
     * subwarp synchronization edges (BSYNC reconvergence, barrier
     * release) — see race/hooks.hh. Works on baseline and SI schedules
     * alike; swsim --race and difftest --race attach a
     * race::RaceDetector here.
     */
    RaceHooks *raceHooks = nullptr;

    /** Total warp slots per SM (paper sweeps {8, 16, 32}). */
    unsigned
    warpSlotsPerSm() const
    {
        return pbsPerSm * warpSlotsPerPb;
    }
};

} // namespace si

#endif // SI_CORE_CONFIG_HH
