#include "core/subwarp_scheduler.hh"

#include "common/log.hh"
#include "common/sim_error.hh"
#include "race/hooks.hh"

namespace si {

SubwarpUnit::SubwarpUnit(const GpuConfig &config, std::uint64_t rng_seed,
                         unsigned sm_id)
    : config_(config), rng_(rng_seed), smId_(sm_id)
{
}

void
SubwarpUnit::diverge(Warp &warp, ThreadMask taken, std::uint32_t taken_pc,
                     std::uint32_t fallthrough_pc, std::int8_t stall_hint,
                     [[maybe_unused]] Cycle now)
{
    const ThreadMask active = warp.activeMask();
    const ThreadMask not_taken = active - taken;
    sim_throw_if(taken.empty() || not_taken.empty(),
                 ErrorKind::Internal,
                 "diverge() called on a uniform branch");

    bool keep_taken;
    switch (config_.divergeOrder) {
      case DivergeOrder::TakenFirst:
        keep_taken = true;
        break;
      case DivergeOrder::NotTakenFirst:
        keep_taken = false;
        break;
      case DivergeOrder::HintStallFirst:
        // Prefer the path the compiler marked as stall-heavy so the
        // other path is banked for latency tolerance.
        keep_taken = stall_hint > 0;
        break;
      case DivergeOrder::Random:
      default:
        keep_taken = rng_.chance(0.5f);
        break;
    }

    const ThreadMask keep = keep_taken ? taken : not_taken;
    const ThreadMask demote = keep_taken ? not_taken : taken;
    const std::uint32_t keep_pc = keep_taken ? taken_pc : fallthrough_pc;
    const std::uint32_t demote_pc = keep_taken ? fallthrough_pc : taken_pc;

    for (unsigned lane : lanesOf(keep))
        warp.setPc(lane, keep_pc);
    for (unsigned lane : lanesOf(demote)) {
        warp.setPc(lane, demote_pc);
        warp.setState(lane, ThreadState::Ready);
    }
    ++stats_.divergentBranches;
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::SubwarpDiverge, now,
                             keep_pc, keep.raw(), demote.raw(), demote_pc));
}

bool
SubwarpUnit::arriveBsync(Warp &warp, BarIndex bar, std::uint32_t sync_pc,
                         Cycle now)
{
    const ThreadMask active = warp.activeMask();
    const ThreadMask participants = warp.barrier(bar) & warp.live();
    const ThreadMask others = participants - active;

    // Successful BSYNC: every other participant is blocked *on this
    // barrier* (or dead). A thread blocked on a different barrier has
    // not arrived here.
    bool all_arrived = true;
    for (unsigned lane : lanesOf(others)) {
        if (warp.state(lane) != ThreadState::Blocked ||
            warp.blockedOn(lane) != bar) {
            all_arrived = false;
            break;
        }
    }

    if (all_arrived) {
        for (unsigned lane : lanesOf(participants)) {
            warp.setState(lane, ThreadState::Active);
            warp.setBlockedOn(lane, barNone);
            warp.setPc(lane, sync_pc + 1);
        }
        // Lanes that executed this BSYNC without having registered in
        // the barrier (legal for degenerate codegen) also continue.
        for (unsigned lane : lanesOf(active - participants)) {
            warp.setPc(lane, sync_pc + 1);
        }
        warp.setBarrier(bar, ThreadMask());
        ++stats_.reconvergences;
        // Reconvergence is a happens-before edge for the race
        // sanitizer: every lane that passed this BSYNC (participants
        // plus unregistered arrivals) has synchronized.
        if (config_.raceHooks != nullptr) {
            config_.raceHooks->onSync(warp.logicalId,
                                      (participants | active).raw(),
                                      sync_pc, now);
        }
        SI_TRACE_EVENT(config_.traceSink,
                       makeEvent(warp, TraceEventKind::SubwarpReconverge,
                                 now, sync_pc, participants.raw(), 0, bar));
        return true;
    }

    // Unsuccessful BSYNC: block and hand the slot to a READY subwarp.
    for (unsigned lane : lanesOf(active)) {
        warp.setState(lane, ThreadState::Blocked);
        warp.setBlockedOn(lane, bar);
    }
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::SubwarpBlock, now,
                             sync_pc, active.raw(), 0, bar));
    select(warp, now);
    return false;
}

void
SubwarpUnit::releaseBarrier(Warp &warp, BarIndex bar,
                            [[maybe_unused]] Cycle now)
{
    // The full barrier mask (dead lanes included) — the exited
    // participants whose completion triggered this release are a
    // happens-before predecessor of the lanes released below.
    const ThreadMask all_participants = warp.barrier(bar);
    const ThreadMask blocked = all_participants & warp.live();
    for (unsigned lane : lanesOf(blocked)) {
        warp.setState(lane, ThreadState::Active);
        warp.setBlockedOn(lane, barNone);
        warp.setPc(lane, warp.pc(lane) + 1);
    }
    warp.setBarrier(bar, ThreadMask());
    ++stats_.barrierReleasesOnExit;
    if (config_.raceHooks != nullptr && all_participants.any()) {
        config_.raceHooks->onSync(warp.logicalId, all_participants.raw(),
                                  0, now);
    }
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::BarrierRelease, now, 0,
                             blocked.raw(), 0, bar));
}

void
SubwarpUnit::exitLanes(Warp &warp, ThreadMask kill, Cycle now)
{
    const ThreadMask exiting = kill & warp.activeMask();
    for (unsigned lane : lanesOf(exiting))
        warp.setState(lane, ThreadState::Inactive);
    warp.killLanes(exiting);

    if (warp.done())
        return;

    // A barrier whose surviving participants are all blocked can never
    // be completed by an arriving subwarp — release it now.
    for (BarIndex b = 0; b < Warp::numBarriers; ++b) {
        const ThreadMask parts = warp.barrier(b) & warp.live();
        if (parts.empty())
            continue;
        bool all_blocked = true;
        for (unsigned lane : lanesOf(parts)) {
            if (warp.state(lane) != ThreadState::Blocked ||
                warp.blockedOn(lane) != b) {
                all_blocked = false;
                break;
            }
        }
        if (all_blocked)
            releaseBarrier(warp, b, now);
    }

    if (warp.activeMask().empty())
        select(warp, now);
}

bool
SubwarpUnit::subwarpStall(Warp &warp, std::uint8_t req_mask, Cycle now)
{
    if (!config_.siEnabled)
        return false;

    const ThreadMask active = warp.activeMask();
    sim_throw_if(active.empty(), ErrorKind::Internal,
                 "subwarp-stall with no active subwarp");
    if (warp.readySubwarps().empty())
        return false;

    // Binning limit: a demotion needs a free TST entry.
    auto &tst = warp.tst();
    if (tst.size() < config_.maxSubwarps)
        tst.resize(config_.maxSubwarps);
    TstEntry *entry = nullptr;
    for (auto &e : tst) {
        if (!e.valid) {
            entry = &e;
            break;
        }
    }
    if (!entry) {
        ++stats_.stallDemotionsDeniedTstFull;
        SI_TRACE_EVENT(config_.traceSink,
                       makeEvent(warp, TraceEventKind::TstFull, now,
                                 warp.activePc(), active.raw()));
        return false;
    }

    const ScoreboardFile &sb = warp.scoreboards();
    entry->valid = true;
    entry->members = active;
    entry->pc = warp.activePc();
    entry->sbId = sb.firstBlocking(active, req_mask);
    entry->sbCount = entry->sbId == sbNone
                         ? 0
                         : sb.maxCount(active, entry->sbId);
    sim_throw_if(entry->sbId == sbNone, ErrorKind::Internal,
                 "subwarp-stall but no scoreboard is blocking");

    for (unsigned lane : lanesOf(active))
        warp.setState(lane, ThreadState::Stalled);
    ++stats_.subwarpStalls;
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::SubwarpStall, now,
                             entry->pc, active.raw(), 0, entry->sbId));

    select(warp, now);
    return true;
}

bool
SubwarpUnit::subwarpYield(Warp &warp, Cycle now)
{
    if (!config_.siEnabled || !config_.yieldEnabled)
        return false;

    const ThreadMask active = warp.activeMask();
    sim_throw_if(active.empty(), ErrorKind::Internal,
                 "subwarp-yield with no active subwarp");

    // Yield is only profitable when a *different* subwarp can take over;
    // otherwise selection would fall straight back to us (paper III-B).
    const std::uint32_t yielded_pc = warp.activePc();
    bool have_other = false;
    for (const auto &g : warp.readySubwarps()) {
        if (g.first != yielded_pc) {
            have_other = true;
            break;
        }
    }
    if (!have_other)
        return false;

    for (unsigned lane : lanesOf(active))
        warp.setState(lane, ThreadState::Ready);
    ++stats_.subwarpYields;
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::SubwarpYield, now,
                             yielded_pc, active.raw()));

    if (!select(warp, now, yielded_pc)) {
        // Unreachable given the pre-check, but keep the warp runnable.
        for (unsigned lane : lanesOf(active))
            warp.setState(lane, ThreadState::Active);
        return false;
    }
    return true;
}

void
SubwarpUnit::wakeup(Warp &warp, SbIndex sb, [[maybe_unused]] Cycle now)
{
    const ScoreboardFile &sbf = warp.scoreboards();
    for (auto &entry : warp.tst()) {
        if (!entry.valid || entry.sbId != sb)
            continue;
        if (entry.sbCount > 0)
            --entry.sbCount;
        // The recorded count is the hardware mechanism; the replicated
        // per-thread counters are the ground truth, and the two agree
        // because writebacks are broadcast exactly once per decrement.
        if (sbf.ready(entry.members & warp.live(),
                      std::uint8_t(1u << entry.sbId))) {
            for (unsigned lane : lanesOf(entry.members & warp.live())) {
                if (warp.state(lane) == ThreadState::Stalled)
                    warp.setState(lane, ThreadState::Ready);
            }
            entry.valid = false;
            ++stats_.subwarpWakeups;
            SI_TRACE_EVENT(config_.traceSink,
                           makeEvent(warp, TraceEventKind::SubwarpWakeup,
                                     now, entry.pc,
                                     (entry.members & warp.live()).raw(),
                                     0, sb));
        }
    }
}

bool
SubwarpUnit::select(Warp &warp, Cycle now, std::uint32_t avoid_pc)
{
    if (warp.activeMask().any())
        return false;

    auto groups = warp.readySubwarps();
    if (groups.empty())
        return false;

    // Round-robin across PCs: first group with pc > cursor, else the
    // lowest-pc group; groups at avoid_pc are skipped unless they are
    // the only choice.
    auto eligible = [&](const auto &g) { return g.first != avoid_pc; };

    const std::pair<std::uint32_t, ThreadMask> *chosen = nullptr;
    for (const auto &g : groups) {
        if (g.first > warp.selectCursor && eligible(g)) {
            chosen = &g;
            break;
        }
    }
    if (!chosen) {
        for (const auto &g : groups) {
            if (eligible(g)) {
                chosen = &g;
                break;
            }
        }
    }
    if (!chosen)
        chosen = &groups.front();

    for (unsigned lane : lanesOf(chosen->second))
        warp.setState(lane, ThreadState::Active);
    warp.selectCursor = chosen->first;
    warp.longOpsSinceSwitch = 0;
    warp.issueReadyAt = std::max(warp.issueReadyAt,
                                 now + config_.switchLatency);
    warp.inFetchStall = false;
    ++stats_.subwarpSelects;
    SI_TRACE_EVENT(config_.traceSink,
                   makeEvent(warp, TraceEventKind::SubwarpSelect, now,
                             chosen->first, chosen->second.raw()));
    return true;
}

} // namespace si
