/**
 * @file
 * Sm: one streaming multiprocessor — four processing blocks with warp
 * schedulers and L0 instruction caches, a shared L1I and L1D, an RT
 * core, writeback event plumbing, and the warp-status evaluation that
 * classifies stalls for both scheduling and the paper's exposed
 * load-to-use stall metric.
 */

#ifndef SI_CORE_SM_HH
#define SI_CORE_SM_HH

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/subwarp_scheduler.hh"
#include "core/warp.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "rtcore/rtcore.hh"
#include "trace/events.hh"

namespace si {

/** Why a warp could (or could not) issue this cycle. */
enum class WarpStatus : std::uint8_t {
    Issuable,        ///< ready to issue its next instruction
    Busy,            ///< switch or fetch penalty timer still running
    FetchStall,      ///< just initiated an instruction fetch
    ScoreboardStall, ///< load-to-use stall: &req scoreboard outstanding
    PipeStall,       ///< short-latency operand not yet ready
    WaitWakeup,      ///< no ACTIVE subwarp; all demoted subwarps pending
    Done,            ///< every lane exited
};

/**
 * Warp-cycle accounting for one MARKER-delimited kernel region, indexed
 * by the program's region-table index (0 = the implicit "_entry"). The
 * same partition identity as the SM-wide counters holds per region:
 *   warpCycles == instrsIssued + arbLossCycles + sum(stallCyclesByReason)
 */
struct RegionCounters
{
    std::uint64_t warpCycles = 0;
    std::uint64_t instrsIssued = 0;
    std::uint64_t arbLossCycles = 0;
    std::array<std::uint64_t, numStallReasons> stallCyclesByReason{};

    void accumulate(const RegionCounters &other);
    bool operator==(const RegionCounters &) const = default;
};

/** Aggregate statistics for one SM (and, summed, for the GPU). */
struct SmStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instrsIssued = 0;
    std::uint64_t warpsRetired = 0;

    /** Cycles with zero issues across all processing blocks. */
    std::uint64_t noIssueCycles = 0;

    /** Exposed load-to-use stalls (paper Section I definition). */
    std::uint64_t exposedLoadStallCycles = 0;

    /**
     * Exposed stall cycles attributed to divergent code, weighted by
     * the fraction of memory-stalled warps whose stalling subwarp is
     * divergent in each exposed cycle.
     */
    double exposedLoadStallCyclesDivergent = 0;

    /** No-issue cycles attributable to instruction fetch. */
    std::uint64_t exposedFetchStallCycles = 0;

    /** Warp-cycles spent in each blocked classification. */
    std::uint64_t warpScoreboardStallCycles = 0;
    std::uint64_t warpPipeStallCycles = 0;
    std::uint64_t warpFetchStallCycles = 0;
    std::uint64_t warpSwitchCycles = 0;

    /** Dynamic operation mix. */
    std::uint64_t ldgIssued = 0;

    /** Global-memory transactions (unique L1D lines per LDG/TEX). */
    std::uint64_t gmemTransactions = 0;
    std::uint64_t texIssued = 0;
    std::uint64_t rtQueriesIssued = 0;
    std::uint64_t stgIssued = 0;

    /** Divergence machinery (mirrors SubwarpUnitStats at end of run). */
    std::uint64_t divergentBranches = 0;
    std::uint64_t reconvergences = 0;
    std::uint64_t subwarpSelects = 0;
    std::uint64_t subwarpStalls = 0;
    std::uint64_t subwarpWakeups = 0;
    std::uint64_t subwarpYields = 0;
    std::uint64_t tstFullDenials = 0;

    /** Cache behaviour. */
    std::uint64_t l1dHits = 0, l1dMisses = 0;
    std::uint64_t l1iHits = 0, l1iMisses = 0;
    std::uint64_t l0iHits = 0, l0iMisses = 0;

    /**
     * Warp-cycle partition (observability layer): every resident,
     * unfinished warp contributes exactly one unit per SM cycle to
     * either an issue, an arbitration loss (issuable but another warp
     * won the slot), or one of the Figure-3 stall reasons, so
     *   liveWarpCycles == instrsIssued + arbLossCycles
     *                     + sum(stallCyclesByReason)
     * holds exactly — the zero-residual base of swprof --diff.
     */
    std::uint64_t liveWarpCycles = 0;
    std::uint64_t arbLossCycles = 0;
    std::array<std::uint64_t, numStallReasons> stallCyclesByReason{};

    /**
     * Subwarp-mode residency: live warp-cycles split by the shape of
     * the active mask (full warp / divergent subwarp / none active).
     */
    std::uint64_t warpCyclesSubwarpFull = 0;
    std::uint64_t warpCyclesSubwarpPartial = 0;
    std::uint64_t warpCyclesSubwarpNone = 0;

    /** Per-region attribution, indexed by program region-table index. */
    std::vector<RegionCounters> regions;

    /** Accumulate another SM's statistics into this one. */
    void accumulate(const SmStats &other);

    /** Field-wise equality (the determinism validator's contract). */
    bool operator==(const SmStats &) const = default;

    /** Serialize every counter. */
    void save(SnapshotWriter &w) const;

    /** Restore counters serialized by save(). */
    void restore(SnapshotReader &r);
};

/**
 * One processing block: warp slots, an L0 instruction cache, and the
 * warp-scheduler arbitration state. Pure data; the issue logic lives
 * in Sm.
 */
struct ProcessingBlock
{
    explicit ProcessingBlock(const CacheConfig &l0_config)
        : l0i(l0_config)
    {
    }

    Cache l0i;
    std::vector<unsigned> resident; ///< indices into Sm::warps_
    unsigned regsInUse = 0;         ///< register-file words allocated
    unsigned lrrCursor = 0;
    int gtoCurrent = -1; ///< warp index the greedy scheduler is riding
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    /**
     * @param id    SM index (stats naming)
     * @param config shared GPU configuration
     * @param memory functional memory image
     * @param scene  BVH for RTQUERY, or nullptr for compute-only kernels
     */
    Sm(unsigned id, const GpuConfig &config, Memory &memory,
       const Bvh *scene);

    /** Hand a warp to this SM; it is admitted when a slot frees up. */
    void addWarp(std::unique_ptr<Warp> warp);

    /** True when every assigned warp has retired. */
    bool done() const;

    /** Advance one core clock. */
    void tick(Cycle now);

    // ---- event-driven fast-forward (cycle leap) support ----

    /**
     * True when the last tick() neither issued an instruction nor
     * mutated any machine state (no writeback drained, no warp retired
     * or admitted, no fetch initiated, no subwarp selected or demoted).
     * Re-running such a tick at any cycle before nextEventAt() produces
     * the exact same per-cycle accounting and changes nothing, which is
     * what makes the bulk back-fill of applyQuietCycles() exact.
     */
    bool lastTickQuiet() const { return lastTickQuiet_; }

    /**
     * Earliest future cycle at which this SM's state can change: the
     * head of the writeback completion queue (which also bounds every
     * scoreboard drain, MSHR fill, and subwarp wakeup) or the earliest
     * per-warp timer expiry (switch/fetch penalty, short-latency
     * operand). invalidCycle when nothing is pending. Valid after
     * tick(); meaningful for leaping only when lastTickQuiet().
     */
    Cycle nextEventAt() const { return nextEventAt_; }

    /**
     * Bulk-apply @p n quiet cycles of accounting in one step: every
     * counter the per-cycle loop would have bumped (cycles,
     * liveWarpCycles, subwarp-mode residency, legacy stall buckets,
     * per-reason and per-region stall cycles, noIssue/exposed-stall
     * cycles, TST-full denials) advances by exactly n times the last
     * tick's delta. The divergent-exposure accumulator is a double
     * that the per-cycle loop grows by repeated addition, so the
     * back-fill repeats the addition n times rather than adding n*frac
     * — bit-identical IEEE754 behaviour, not just mathematically equal.
     * Callable only while the machine is quiet (the caller leaps at
     * most to nextEventAt()); no machine state other than statistics
     * changes.
     */
    void applyQuietCycles(std::uint64_t n);

    /** Finalize statistics (fold in unit/cache counters). */
    void finalizeStats();

    /**
     * Current statistics with the unit/cache counters folded in, valid
     * at any cycle boundary — what the windowed metrics sampler reads
     * mid-run. finalizeStats() is exactly stats() = liveStats().
     */
    SmStats liveStats() const;

    // ---- fault-tolerance support ----

    /** True while a writeback (scoreboard release) is still in flight. */
    bool hasPendingWritebacks() const { return !events_.empty(); }

    /**
     * Audit every resident warp against the invariants of
     * core/invariants.hh (scoreboard release balance vs the in-flight
     * writeback queue, TST leaks, mask discipline).
     * @return empty when clean, else a violation report plus the
     *         offending warp's full state dump.
     */
    std::string auditInvariants() const;

    /** State dump of every unfinished warp (watchdog diagnostics). */
    std::string dumpState() const;

    /**
     * Fault injection: silently discard the earliest pending writeback,
     * so its scoreboard never drains. The watchdog or invariant checker
     * must catch the resulting livelock/imbalance.
     * @return a description of the dropped event, or empty when no
     *         writeback was pending.
     */
    std::string dropPendingWriteback();

    const SmStats &stats() const { return stats_; }
    SmStats &stats() { return stats_; }

    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }
    RtCore &rtCore() { return rtcore_; }
    const SubwarpUnit &subwarpUnit() const { return unit_; }

    /** Number of warps assigned over the run (tests). */
    std::size_t numWarps() const { return warps_.size(); }

    /** Direct warp access (tests). */
    Warp &warpAt(std::size_t i) { return *warps_[i]; }

    /**
     * Warps concurrently resident per PB under the *first* admitted
     * kernel's register demand (single-kernel launches; co-scheduled
     * launches are bounded per warp by the register-file accounting).
     */
    unsigned maxResidentPerPb() const { return maxResidentPerPb_; }

    /**
     * Serialize the complete SM: every warp, processing block, cache,
     * the writeback event queue, MSHR timers, RT core, subwarp unit,
     * and statistics.
     */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state serialized by save(). The SM must already hold the
     * same warp population (the resume path re-runs the kernel launch
     * before restoring); mismatched warp counts or ids throw
     * SimError(ErrorKind::Snapshot).
     */
    void restore(SnapshotReader &r);

  private:
    /** Pending writeback: a scoreboard release at a future cycle. */
    struct Writeback
    {
        unsigned warpIdx;
        ThreadMask mask;
        SbIndex sb;
        WbPort port;
    };

    void drainWritebacks(Cycle now);
    void admitWarps();

    /**
     * Classify @p warp for this cycle. Side effects: triggers subwarp
     * selection when the warp has no ACTIVE subwarp, and initiates
     * instruction fetch when the buffered PC is stale.
     */
    WarpStatus evalWarp(unsigned warp_idx, Cycle now);

    /** Issue the active subwarp's next instruction. */
    void issue(unsigned warp_idx, Cycle now);

    /** Schedule a writeback event. */
    void pushWriteback(Cycle when, unsigned warp_idx, ThreadMask mask,
                       SbIndex sb, WbPort port);

    /**
     * Completion time of an L1D miss issued at @p now, honoring the
     * MSHR limit (config.maxOutstandingMisses): with all MSHRs busy
     * the miss queues behind the earliest-free one.
     */
    Cycle missCompletion(Cycle now, Cycle base_latency);

    /** True when the stalling subwarp(s) of @p warp are divergent. */
    bool stallIsDivergent(const Warp &warp, WarpStatus status) const;

    /**
     * Per-warp-cycle accounting shared by tick() (n = 1) and
     * applyQuietCycles() (n = skipped cycles): liveWarpCycles, the
     * subwarp-mode residency bucket, the legacy per-status counter,
     * and — for non-issuable warps — the per-reason and per-region
     * stall attribution. One code path for both so the per-cycle and
     * fast-forward accountings cannot drift.
     */
    void accountWarpCycles(Warp &warp, WarpStatus status,
                           std::uint64_t n);

    /** Per-region counter slot for @p idx, growing the table on demand. */
    RegionCounters &regionAt(std::uint32_t idx);

    unsigned id_;
    const GpuConfig &config_;
    Memory &memory_;

    Cache l1d_;
    Cache l1i_;
    RtCore rtcore_;
    SubwarpUnit unit_;

    std::vector<std::unique_ptr<Warp>> warps_;
    std::deque<unsigned> pendingAdmission_;
    std::vector<ProcessingBlock> pbs_;
    std::multimap<Cycle, Writeback> events_;

    unsigned maxResidentPerPb_ = 0;

    /** Per-MSHR busy-until times (empty = unlimited MSHRs). */
    std::vector<Cycle> mshrFreeAt_;

    /** Per-cycle scratch: status of each resident warp. */
    std::vector<WarpStatus> statusScratch_;

    /**
     * Per-cycle scratch: the cycle each warp's status expires on its
     * own (issueReadyAt for Busy/FetchStall, the operand ready_at for
     * PipeStall; invalidCycle for statuses that only a writeback can
     * change). Written by evalWarp, folded into nextEventAt_ by tick.
     */
    std::vector<Cycle> wakeScratch_;

    // ---- fast-forward tick classification (per-tick scratch; none of
    // this is serialized — a restored SM re-derives it on its first
    // tick, and leaps never span a checkpoint boundary) ----
    bool tickDirty_ = false;      ///< tick mutated state (set by sites)
    bool lastTickQuiet_ = false;
    Cycle nextEventAt_ = invalidCycle;
    bool ffAnyLive_ = false;      ///< last tick's any_live
    unsigned ffMemStalled_ = 0;   ///< last tick's mem_stalled_warps
    unsigned ffMemStalledDiv_ = 0;///< last tick's mem_stalled_divergent
    bool ffAnyFetch_ = false;     ///< last tick's any_fetch_stall
    std::uint64_t ffDeniedDelta_ = 0; ///< TST-full denials in last tick

    SmStats stats_;
};

} // namespace si

#endif // SI_CORE_SM_HH
