/**
 * @file
 * Warp: architectural and scheduling state for one 32-thread warp,
 * including the per-thread status state machine of Figure 7 and the
 * thread status table (TST) of Figure 8.
 */

#ifndef SI_CORE_WARP_HH
#define SI_CORE_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/thread_mask.hh"
#include "common/types.hh"
#include "core/scoreboard.hh"
#include "isa/program.hh"

namespace si {

/**
 * Per-thread status (paper Figure 7). STALLED exists only when Subwarp
 * Interleaving is enabled.
 */
enum class ThreadState : std::uint8_t {
    Inactive, ///< not yet launched or exited
    Active,   ///< member of the currently executing subwarp
    Ready,    ///< runnable but not selected (divergence or yield)
    Blocked,  ///< waiting at a BSYNC convergence barrier
    Stalled,  ///< SI: demoted on a load-to-use stall, awaiting wakeup
};

/** One thread status table entry (Figure 8a): a tracked stalled subwarp. */
struct TstEntry
{
    bool valid = false;
    ThreadMask members;      ///< lanes binned into this entry
    std::uint32_t pc = 0;    ///< subwarp PC at demotion
    SbIndex sbId = sbNone;   ///< scoreboard the subwarp stalled on
    std::uint8_t sbCount = 0;///< outstanding count recorded at demotion
};

/**
 * All state for one warp. The divergence and SI transition logic lives
 * in SubwarpScheduler (core/subwarp_scheduler.hh); this class is the
 * state it operates on, plus the architectural register/predicate files.
 */
class Warp
{
  public:
    static constexpr unsigned numBarriers = 16;

    /**
     * @param id        global warp id
     * @param pb        processing-block index within the SM
     * @param program   kernel to execute
     * @param num_threads lanes active at launch (normally 32)
     */
    Warp(unsigned id, unsigned pb, const Program *program,
         unsigned num_threads);

    // ---- identity ----
    unsigned id() const { return id_; }
    unsigned pb() const { return pb_; }
    const Program &program() const { return *program_; }

    // ---- architectural state ----

    std::uint32_t
    reg(unsigned lane, RegIndex r) const
    {
        if (r == regNone)
            return 0; // RZ
        return regs_[std::size_t(r) * warpSize + lane];
    }

    void
    setReg(unsigned lane, RegIndex r, std::uint32_t v)
    {
        if (r == regNone)
            return;
        regs_[std::size_t(r) * warpSize + lane] = v;
    }

    bool
    predicate(unsigned lane, PredIndex p) const
    {
        if (p == predNone)
            return true; // PT
        return preds_[lane] & (1u << p);
    }

    void
    setPredicate(unsigned lane, PredIndex p, bool v)
    {
        if (p == predNone)
            return;
        if (v)
            preds_[lane] |= std::uint8_t(1u << p);
        else
            preds_[lane] &= std::uint8_t(~(1u << p));
    }

    // ---- thread status (Figure 7 state machine data) ----

    ThreadState state(unsigned lane) const { return state_[lane]; }
    void setState(unsigned lane, ThreadState s) { state_[lane] = s; }

    std::uint32_t pc(unsigned lane) const { return pc_[lane]; }
    void setPc(unsigned lane, std::uint32_t pc) { pc_[lane] = pc; }

    /** Lanes not yet exited. */
    ThreadMask live() const { return live_; }
    void killLanes(ThreadMask m) { live_ -= m; }

    /** Lanes currently in a given state. */
    ThreadMask lanesInState(ThreadState s) const;

    /** The currently executing subwarp (lanes in Active). */
    ThreadMask activeMask() const { return lanesInState(ThreadState::Active); }

    /** PC shared by the active subwarp; invalid when none active. */
    std::uint32_t
    activePc() const
    {
        ThreadMask a = activeMask();
        return a.any() ? pc_[a.lowest()] : 0;
    }

    /** True when every lane has exited. */
    bool done() const { return live_.empty(); }

    /**
     * Distinct READY subwarps, grouped by PC, in ascending-PC order.
     * Each element is (pc, lanes).
     */
    std::vector<std::pair<std::uint32_t, ThreadMask>> readySubwarps() const;

    // ---- convergence barriers ----
    ThreadMask barrier(BarIndex b) const { return barriers_[b]; }
    void setBarrier(BarIndex b, ThreadMask m) { barriers_[b] = m; }

    /** Barrier a BLOCKED thread is waiting on (barNone otherwise). */
    BarIndex blockedOn(unsigned lane) const { return blockedOn_[lane]; }
    void setBlockedOn(unsigned lane, BarIndex b) { blockedOn_[lane] = b; }

    // ---- scoreboards ----
    ScoreboardFile &scoreboards() { return sb_; }
    const ScoreboardFile &scoreboards() const { return sb_; }

    // ---- thread status table ----
    std::vector<TstEntry> &tst() { return tst_; }
    const std::vector<TstEntry> &tst() const { return tst_; }

    /** Number of valid (occupied) TST entries. */
    unsigned tstOccupancy() const;

    // ---- short-latency dependency tracking ----

    Cycle
    regReadyAt(RegIndex r) const
    {
        return r == regNone ? 0 : regReady_[r];
    }

    void
    setRegReadyAt(RegIndex r, Cycle c)
    {
        if (r != regNone)
            regReady_[r] = c;
    }

    Cycle predReadyAt(PredIndex p) const
    {
        return p == predNone ? 0 : predReady_[p];
    }

    void
    setPredReadyAt(PredIndex p, Cycle c)
    {
        if (p != predNone)
            predReady_[p] = c;
    }

    // ---- scheduling timers and counters ----

    /** Earliest cycle the warp may issue again (switch/fetch penalties). */
    Cycle issueReadyAt = 0;

    /** True when the current issue delay is an instruction-fetch stall. */
    bool inFetchStall = false;

    /** Long-latency ops issued since the last subwarp activation. */
    unsigned longOpsSinceSwitch = 0;

    /** Round-robin cursor for subwarp-select. */
    std::uint32_t selectCursor = 0;

    /** Scheduler bookkeeping: last cycle this warp issued. */
    Cycle lastIssueCycle = 0;

    /** PC whose instruction is resident in the per-warp fetch buffer. */
    std::uint32_t fetchedPc = 0xffffffffu;

    /**
     * Metrics region the warp is currently attributed to: an index into
     * its program's region-name table, retagged by executing MARKER.
     * Index 0 is the implicit "_entry" region.
     */
    std::uint32_t currentRegion = 0;

    /** CTA this warp belongs to (S2R CTAID). */
    unsigned ctaId = 0;

    /**
     * Warp index *within its kernel launch* (S2R TID/WARPID read this,
     * not the GPU-global id, exactly as each launch has its own thread
     * id space on real hardware). Defaults to the global id for
     * single-kernel launches.
     */
    unsigned logicalId = 0;

    /** Reassign the processing block at admission time. */
    void setPb(unsigned pb) { pb_ = pb; }

    /**
     * Serialize every architectural and scheduling field. The program
     * pointer is NOT serialized — the resume path reconstructs warps
     * from the same kernel launch and verifies program identity via
     * source fingerprints before calling restore().
     */
    void save(SnapshotWriter &w) const;

    /** Restore state serialized by save(); warp id and register-file
     *  geometry must match this warp's construction. */
    void restore(SnapshotReader &r);

  private:
    unsigned id_;
    unsigned pb_;
    const Program *program_;

    std::vector<std::uint32_t> regs_; ///< numRegs x 32, register-major
    std::array<std::uint8_t, warpSize> preds_{};
    std::array<ThreadState, warpSize> state_{};
    std::array<std::uint32_t, warpSize> pc_{};
    ThreadMask live_;
    std::array<ThreadMask, numBarriers> barriers_{};
    std::array<BarIndex, warpSize> blockedOn_{};
    ScoreboardFile sb_;
    std::vector<TstEntry> tst_;
    std::array<Cycle, 256> regReady_{};
    std::array<Cycle, 8> predReady_{};
};

} // namespace si

#endif // SI_CORE_WARP_HH
