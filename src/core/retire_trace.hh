/**
 * @file
 * Per-lane retirement traces. A RetireEvent records one instruction a
 * lane retired (its PC, plus whether the guard predicate passed). Each
 * lane's trace is schedule-invariant: it does not depend on how the
 * warp scheduler, subwarp scheduler, or SI policies interleave subwarps
 * — only on the lane's architectural control flow. That makes the
 * traces directly comparable between the cycle model and the functional
 * reference interpreter (src/ref), which executes with a completely
 * different (canonical lowest-PC) schedule.
 */

#ifndef SI_CORE_RETIRE_TRACE_HH
#define SI_CORE_RETIRE_TRACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/thread_mask.hh"
#include "common/types.hh"
#include "trace/events.hh"

namespace si {

/** One retired instruction as seen by a single lane. */
struct RetireEvent
{
    std::uint32_t pc = 0;

    /** True when the lane's guard passed (it executed, not just advanced). */
    bool executed = true;

    bool operator==(const RetireEvent &) const = default;
};

/** A full warp of per-lane retirement traces. */
using WarpRetireTrace = std::array<std::vector<RetireEvent>, warpSize>;

/**
 * Collects retirement traces from the cycle model's trace stream. A
 * TraceSink adapter over the always-on Issue events: install with
 * `config.traceSink = &collector`; the collector must outlive the run.
 * Traces are keyed by warp id (for single-kernel launches this equals
 * the warp's launch index). Because Issue events are in the always-on
 * tier, the differential oracle works even in -DSI_TRACE=OFF builds.
 */
class RetireTraceCollector : public TraceSink
{
  public:
    void
    record(const TraceEvent &ev) override
    {
        if (ev.kind != TraceEventKind::Issue)
            return;
        const ThreadMask active(ev.mask);
        const ThreadMask exec(ev.mask2);
        WarpRetireTrace &warp = traces_[ev.warpId];
        for (unsigned lane : lanesOf(active))
            warp[lane].push_back({ev.pc, exec.test(lane)});
    }

    /**
     * Issue events are always-on-tier; a quiet (leapable) cycle never
     * issues, so fast-forwarding cannot change the collected traces.
     */
    bool wantsPerCycleEvents() const override { return false; }

    const std::map<unsigned, WarpRetireTrace> &traces() const
    {
        return traces_;
    }

    /** Trace for one warp (empty traces when the warp never issued). */
    const WarpRetireTrace &
    warp(unsigned warp_id) const
    {
        static const WarpRetireTrace empty{};
        auto it = traces_.find(warp_id);
        return it == traces_.end() ? empty : it->second;
    }

    void clear() { traces_.clear(); }

  private:
    std::map<unsigned, WarpRetireTrace> traces_;
};

} // namespace si

#endif // SI_CORE_RETIRE_TRACE_HH
