/**
 * @file
 * Hook interface between the cycle core and the dynamic race sanitizer.
 *
 * Header-only on purpose (the TraceSink precedent): core/ calls through
 * this interface when GpuConfig::raceHooks is set, so si_core never
 * links against si_race and the detector stays an optional layer.
 *
 * The core reports two things:
 *   - every global-memory access (LDG/STG/TEX/TLD) at issue time, with
 *     the per-lane addresses and the issuing subwarp's masks;
 *   - every synchronization point that orders subwarps of one warp:
 *     BSSY/BSYNC reconvergence and barrier-release-on-exit. The lanes
 *     named in the mask have synchronized — their clocks join.
 *
 * Scoreboard &wr/&req waits create no cross-lane edge: the replicated
 * per-thread counters (ScoreboardFile) make every wait lane-local, so
 * those edges are already subsumed by per-lane program order.
 */

#ifndef SI_RACE_HOOKS_HH
#define SI_RACE_HOOKS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace si {

/** One global-memory instruction issued by one subwarp. */
struct MemAccessEvent
{
    Cycle cycle = 0;
    unsigned smId = 0;

    /** Globally unique logical warp id (matches S2R WARPID). */
    unsigned warpId = 0;

    std::uint32_t pc = 0;

    /** Lanes that executed the access (guard passed). */
    std::uint32_t execMask = 0;

    /** Lanes of the issuing subwarp (they advance in lockstep). */
    std::uint32_t activeMask = 0;

    bool isStore = false;

    /** Byte address per lane; valid where the execMask bit is set. */
    std::array<Addr, warpSize> addr{};
};

/** Consumer interface; implemented by race/RaceDetector. */
class RaceHooks
{
  public:
    virtual ~RaceHooks() = default;

    /** A global-memory access was issued. */
    virtual void onAccess(const MemAccessEvent &ev) = 0;

    /**
     * The lanes in @p mask of warp @p warpId synchronized with each
     * other at @p pc (BSYNC reconvergence or barrier release): every
     * access they performed before this point happens-before every
     * access any of them performs after it.
     */
    virtual void onSync(unsigned warpId, std::uint32_t mask,
                       std::uint32_t pc, Cycle cycle) = 0;
};

} // namespace si

#endif // SI_RACE_HOOKS_HH
