/**
 * @file
 * Dynamic happens-before race sanitizer for subwarp interleaving — the
 * runtime half of the SI-hazard analyzer (the static half is
 * verify/memdep.hh).
 *
 * Model (DESIGN.md section 11): each *lane* of a warp is a logical
 * thread carrying a 32-dimensional vector clock over its warp's lanes.
 * Lanes of one subwarp issue in lockstep, so every access joins the
 * clocks of the whole active mask; BSYNC reconvergence and
 * barrier-release-on-exit join the clocks of all synchronized lanes
 * (RaceHooks::onSync). Scoreboard waits are lane-local (replicated
 * per-thread counters) and add no cross-lane edge.
 *
 * Shadow memory over the accessed words records, per 4-byte word, the
 * last write epoch and the set of read epochs since. An access races
 * when it conflicts (same word, at least one store, distinct lanes of
 * the SAME warp) with a recorded epoch not ordered before it.
 * Cross-warp accesses are never ordered, but inter-warp hazards exist
 * with or without subwarp interleaving — they are outside this
 * detector's (and the static pass's) contract and are not reported.
 *
 * Soundness contract, cross-checked by `difftest --race`: every race
 * reported here lies inside the static may-race set
 * (MemDepResult::mayRace over the same program).
 */

#ifndef SI_RACE_DETECTOR_HH
#define SI_RACE_DETECTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "race/hooks.hh"
#include "snapshot/snapshot.hh"

namespace si {

/** One reported race: a conflicting, unordered access pair. */
struct RaceReport
{
    /** The two conflicting pcs; pcA <= pcB (pcA == pcB: two lanes of
     *  the same static instruction, e.g. divergent loop iterations). */
    std::uint32_t pcA = 0;
    std::uint32_t pcB = 0;

    bool storeStore = false;

    unsigned warpId = 0;

    /** Lane of the earlier (recorded) access and of the later one. */
    unsigned laneA = 0;
    unsigned laneB = 0;

    /** Conflicting word-aligned address. */
    Addr addr = 0;

    /** Issue cycle of the later access (detection point). */
    Cycle cycle = 0;
};

/**
 * The sanitizer. Attach via GpuConfig::raceHooks before a run; races()
 * accumulates deduplicated (pcA, pcB, storeStore) pairs with the first
 * witnessing occurrence of each.
 */
class RaceDetector : public RaceHooks
{
  public:
    void onAccess(const MemAccessEvent &ev) override;
    void onSync(unsigned warpId, std::uint32_t mask, std::uint32_t pc,
                Cycle cycle) override;

    const std::vector<RaceReport> &races() const { return races_; }

    /** Human-readable one-line-per-race report ("" when race-free). */
    std::string report() const;

    /** Drop all state (shadow, clocks, findings). */
    void reset();

    /**
     * Serialize / restore the full sanitizer state (vector clocks,
     * shadow cells, findings), so checkpoint/resume runs report the
     * same races as uninterrupted ones. Untagged payload — embed inside
     * a component section like ScoreboardFile does.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    /** One recorded access epoch on a shadow word. */
    struct AccessRecord
    {
        unsigned warpId = 0;
        std::uint8_t lane = 0;
        std::uint32_t clock = 0; ///< accessor's own epoch at the access
        std::uint32_t pc = 0;
    };

    struct ShadowCell
    {
        bool hasWrite = false;
        AccessRecord write;
        std::vector<AccessRecord> reads; ///< since the last write
    };

    /** Per-warp lane clocks: vc[lane*warpSize + k] = what @p lane knows
     *  of lane k's epoch. */
    struct WarpClocks
    {
        std::vector<std::uint32_t> vc =
            std::vector<std::uint32_t>(warpSize * warpSize, 0);
    };

    void joinLanes(WarpClocks &wc, std::uint32_t mask);
    void touchWord(WarpClocks &wc, const MemAccessEvent &ev, unsigned lane,
                   Addr word);

    void record(const AccessRecord &prior, bool prior_is_store,
                const MemAccessEvent &ev, unsigned lane, Addr word);

    std::map<unsigned, WarpClocks> warps_;
    std::map<Addr, ShadowCell> shadow_; ///< keyed by word address
    std::vector<RaceReport> races_;
};

} // namespace si

#endif // SI_RACE_DETECTOR_HH
