#include "race/detector.hh"

#include <algorithm>
#include <cstdio>

namespace si {

namespace {

/** Lane iteration over a raw 32-bit mask. */
template <typename Fn>
void
forLanes(std::uint32_t mask, Fn &&fn)
{
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (mask & (1u << lane))
            fn(lane);
    }
}

} // namespace

void
RaceDetector::joinLanes(WarpClocks &wc, std::uint32_t mask)
{
    // Pairwise max over every clock dimension, for all lanes in mask.
    std::uint32_t merged[warpSize];
    for (unsigned k = 0; k < warpSize; ++k)
        merged[k] = 0;
    forLanes(mask, [&](unsigned lane) {
        for (unsigned k = 0; k < warpSize; ++k) {
            merged[k] =
                std::max(merged[k], wc.vc[lane * warpSize + k]);
        }
    });
    forLanes(mask, [&](unsigned lane) {
        for (unsigned k = 0; k < warpSize; ++k)
            wc.vc[lane * warpSize + k] = merged[k];
    });
}

void
RaceDetector::record(const AccessRecord &prior, bool prior_is_store,
                     const MemAccessEvent &ev, unsigned lane, Addr word)
{
    const std::uint32_t lo = std::min(prior.pc, ev.pc);
    const std::uint32_t hi = std::max(prior.pc, ev.pc);
    const bool store_store = prior_is_store && ev.isStore;
    for (const RaceReport &r : races_) {
        if (r.pcA == lo && r.pcB == hi && r.storeStore == store_store)
            return; // already witnessed this static pair
    }
    RaceReport r;
    r.pcA = lo;
    r.pcB = hi;
    r.storeStore = store_store;
    r.warpId = ev.warpId;
    r.laneA = prior.lane;
    r.laneB = lane;
    r.addr = word;
    r.cycle = ev.cycle;
    races_.push_back(r);
}

void
RaceDetector::touchWord(WarpClocks &wc, const MemAccessEvent &ev,
                        unsigned lane, Addr word)
{
    ShadowCell &cell = shadow_[word];
    const std::uint32_t *lane_vc = &wc.vc[lane * warpSize];
    const auto ordered = [&](const AccessRecord &rec) {
        if (rec.warpId != ev.warpId)
            return true; // cross-warp: out of contract
        return lane_vc[rec.lane] >= rec.clock;
    };

    if (ev.isStore) {
        if (cell.hasWrite && !ordered(cell.write))
            record(cell.write, true, ev, lane, word);
        for (const AccessRecord &rd : cell.reads) {
            if (!ordered(rd))
                record(rd, false, ev, lane, word);
        }
        cell.hasWrite = true;
        cell.write = {ev.warpId, std::uint8_t(lane),
                      lane_vc[lane], ev.pc};
        cell.reads.clear();
    } else {
        if (cell.hasWrite && !ordered(cell.write))
            record(cell.write, true, ev, lane, word);
        // Upsert this lane's read epoch.
        for (AccessRecord &rd : cell.reads) {
            if (rd.warpId == ev.warpId && rd.lane == lane) {
                rd.clock = lane_vc[lane];
                rd.pc = ev.pc;
                return;
            }
        }
        cell.reads.push_back(
            {ev.warpId, std::uint8_t(lane), lane_vc[lane], ev.pc});
    }
}

void
RaceDetector::onAccess(const MemAccessEvent &ev)
{
    if (ev.execMask == 0)
        return;
    WarpClocks &wc = warps_[ev.warpId];

    // The issuing subwarp's lanes are in lockstep: everything any of
    // them did is ordered before this instruction for all of them.
    joinLanes(wc, ev.activeMask);

    forLanes(ev.execMask, [&](unsigned lane) {
        // Tick the lane's own epoch first so two lanes of this same
        // instruction hitting one word conflict with each other (the
        // static pass covers those via the lane-shared store set).
        wc.vc[lane * warpSize + lane] += 1;
        const Addr a = ev.addr[lane];
        touchWord(wc, ev, lane, a & ~Addr(3));
        if ((a & 3) != 0)
            touchWord(wc, ev, lane, (a + 3) & ~Addr(3));
    });

    // Post-join: publish the new epochs to the whole subwarp while it
    // is still co-active, so a later access by a sibling lane (after a
    // guarded EXIT or divergence) stays ordered.
    joinLanes(wc, ev.activeMask);
}

void
RaceDetector::onSync(unsigned warpId, std::uint32_t mask, std::uint32_t pc,
                     Cycle cycle)
{
    (void)pc;
    (void)cycle;
    if (mask == 0)
        return;
    joinLanes(warps_[warpId], mask);
}

std::string
RaceDetector::report() const
{
    std::string out;
    for (const RaceReport &r : races_) {
        out += "race: ";
        out += r.storeStore ? "store/store" : "store/load";
        out += " pc " + std::to_string(r.pcA) + " (lane " +
               std::to_string(r.laneA) + ") vs pc " +
               std::to_string(r.pcB) + " (lane " +
               std::to_string(r.laneB) + "), warp " +
               std::to_string(r.warpId) + ", addr 0x";
        char hex[20];
        std::snprintf(hex, sizeof(hex), "%llx",
                      static_cast<unsigned long long>(r.addr));
        out += hex;
        out += ", cycle " + std::to_string(r.cycle) + "\n";
    }
    return out;
}

void
RaceDetector::reset()
{
    warps_.clear();
    shadow_.clear();
    races_.clear();
}

void
RaceDetector::save(SnapshotWriter &w) const
{
    w.u32(std::uint32_t(warps_.size()));
    for (const auto &[id, wc] : warps_) {
        w.u32(id);
        for (std::uint32_t c : wc.vc)
            w.u32(c);
    }
    w.u32(std::uint32_t(shadow_.size()));
    const auto put_rec = [&w](const AccessRecord &rec) {
        w.u32(rec.warpId);
        w.u8(rec.lane);
        w.u32(rec.clock);
        w.u32(rec.pc);
    };
    for (const auto &[word, cell] : shadow_) {
        w.u64(word);
        w.b(cell.hasWrite);
        if (cell.hasWrite)
            put_rec(cell.write);
        w.u32(std::uint32_t(cell.reads.size()));
        for (const AccessRecord &rd : cell.reads)
            put_rec(rd);
    }
    w.u32(std::uint32_t(races_.size()));
    for (const RaceReport &r : races_) {
        w.u32(r.pcA);
        w.u32(r.pcB);
        w.b(r.storeStore);
        w.u32(r.warpId);
        w.u32(r.laneA);
        w.u32(r.laneB);
        w.u64(r.addr);
        w.u64(r.cycle);
    }
}

void
RaceDetector::restore(SnapshotReader &r)
{
    reset();
    const std::uint32_t num_warps = r.u32();
    for (std::uint32_t i = 0; i < num_warps; ++i) {
        const unsigned id = r.u32();
        WarpClocks &wc = warps_[id];
        for (std::uint32_t &c : wc.vc)
            c = r.u32();
    }
    const auto get_rec = [&r]() {
        AccessRecord rec;
        rec.warpId = r.u32();
        rec.lane = r.u8();
        rec.clock = r.u32();
        rec.pc = r.u32();
        return rec;
    };
    const std::uint32_t num_cells = r.u32();
    for (std::uint32_t i = 0; i < num_cells; ++i) {
        const Addr word = r.u64();
        ShadowCell &cell = shadow_[word];
        cell.hasWrite = r.b();
        if (cell.hasWrite)
            cell.write = get_rec();
        const std::uint32_t num_reads = r.u32();
        cell.reads.reserve(num_reads);
        for (std::uint32_t j = 0; j < num_reads; ++j)
            cell.reads.push_back(get_rec());
    }
    const std::uint32_t num_races = r.u32();
    races_.reserve(num_races);
    for (std::uint32_t i = 0; i < num_races; ++i) {
        RaceReport rep;
        rep.pcA = r.u32();
        rep.pcB = r.u32();
        rep.storeStore = r.b();
        rep.warpId = r.u32();
        rep.laneA = r.u32();
        rep.laneB = r.u32();
        rep.addr = r.u64();
        rep.cycle = r.u64();
        races_.push_back(rep);
    }
}

} // namespace si
