#include "harness/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"

namespace si {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void
TablePrinter::header(std::vector<std::string> columns)
{
    header_ = std::move(columns);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    panic_if(!header_.empty() && cells.size() != header_.size(),
             "table '%s': row has %zu cells, header has %zu",
             title_.c_str(), cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TablePrinter::pct(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return buf;
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::string cell = cells[i];
            cell.resize(widths[i], ' ');
            line += cell;
            if (i + 1 < cells.size())
                line += "  ";
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = "\n== " + title_ + " ==\n";
    if (!header_.empty()) {
        out += render_row(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        out += std::string(total > 2 ? total - 2 : 0, '-') + "\n";
    }
    for (const auto &r : rows_)
        out += render_row(r);
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TablePrinter::json() const
{
    json::Writer w;
    w.beginObject();
    w.key("title").value(title_);
    w.key("columns").beginArray();
    for (const auto &c : header_)
        w.value(c);
    w.endArray();
    w.key("rows").beginArray();
    for (const auto &r : rows_) {
        w.beginArray();
        for (const auto &cell : r)
            w.value(cell);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.take();
}

} // namespace si
