#include "harness/campaign.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/log.hh"
#include "parallel/executor.hh"
#include "snapshot/snapshot.hh"

namespace si {

namespace {

/** Reverse of errorKindName(), for manifest/result parsing. */
ErrorKind
errorKindFromName(const std::string &name)
{
    static const ErrorKind all[] = {
        ErrorKind::None,           ErrorKind::Config,
        ErrorKind::Parse,          ErrorKind::Internal,
        ErrorKind::BarrierDeadlock, ErrorKind::Livelock,
        ErrorKind::InvariantViolation, ErrorKind::CycleLimit,
        ErrorKind::WallClock,      ErrorKind::ChildTimeout,
        ErrorKind::ChildCrash,     ErrorKind::Snapshot,
    };
    for (ErrorKind k : all) {
        if (name == errorKindName(k))
            return k;
    }
    return ErrorKind::Internal;
}

/** Filename-safe stem from a cell identity. */
std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '.';
        out.push_back(keep ? c : '_');
    }
    return out;
}

/** Atomic text write: temp file + rename, same crash contract as
 *  checkpoint files. */
void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        sim_throw_if(!out, ErrorKind::Internal, "cannot open '%s'",
                     tmp.c_str());
        out.write(content.data(),
                  std::streamsize(content.size()));
        sim_throw_if(!out, ErrorKind::Internal, "write failed for '%s'",
                     tmp.c_str());
    }
    sim_throw_if(std::rename(tmp.c_str(), path.c_str()) != 0,
                 ErrorKind::Internal, "rename '%s' -> '%s' failed: %s",
                 tmp.c_str(), path.c_str(), std::strerror(errno));
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Per-cell result document the child leaves for the parent. */
std::string
cellResultJson(const CampaignCellRecord &rec, const GpuResult &result,
               bool resumed)
{
    json::Writer w;
    w.beginObject();
    w.key("schema").value("si-cell-v1");
    w.key("workload").value(rec.workload);
    w.key("config").value(rec.configLabel);
    w.key("kind").value(errorKindName(result.status.kind));
    w.key("detail").value(result.status.ok() ? ""
                                             : result.status.message);
    w.key("cycles").value(std::uint64_t(result.cycles));
    w.key("instrs").value(result.total.instrsIssued);
    w.key("warpsRetired").value(result.total.warpsRetired);
    w.key("resumed").value(resumed);
    w.endObject();
    return w.take();
}

} // namespace

CampaignRunner::CampaignRunner(
    std::vector<Workload> suite,
    std::vector<std::pair<std::string, GpuConfig>> configs,
    CampaignOptions options)
    : suite_(std::move(suite)),
      configs_(std::move(configs)),
      options_(std::move(options))
{
}

std::string
CampaignRunner::cellStem(const CampaignCellRecord &rec) const
{
    return sanitize(rec.workload) + "__" + sanitize(rec.configLabel);
}

std::string
CampaignRunner::checkpointPath(const CampaignCellRecord &rec) const
{
    return options_.stateDir + "/" + cellStem(rec) + ".ckpt";
}

std::string
CampaignRunner::resultPath(const CampaignCellRecord &rec) const
{
    return options_.stateDir + "/" + cellStem(rec) + ".result.json";
}

std::string
CampaignRunner::manifestJson(const CampaignReport &report)
{
    json::Writer w;
    w.beginObject();
    w.key("schema").value("si-campaign-v1");
    w.key("complete").value(report.complete);
    w.key("done").value(report.numDone());
    w.key("failed").value(report.numFailed());
    w.key("cells").beginArray();
    for (const CampaignCellRecord &c : report.cells) {
        w.beginObject();
        w.key("workload").value(c.workload);
        w.key("config").value(c.configLabel);
        w.key("state").value(c.state);
        w.key("attempts").value(c.attempts);
        w.key("kind").value(errorKindName(c.kind));
        w.key("detail").value(c.detail);
        w.key("diagnosis").value(c.diagnosis);
        w.key("cycles").value(std::uint64_t(c.cycles));
        w.key("checkpoint").value(c.checkpoint);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.take();
}

bool
CampaignRunner::parseManifest(const std::string &text, CampaignReport &out,
                              std::string &error)
{
    json::ParseResult parsed = json::parse(text);
    if (!parsed.ok) {
        error = "manifest is not valid JSON: " + parsed.error;
        return false;
    }
    const json::Value &root = parsed.value;
    const json::Value *schema = root.find("schema");
    if (!schema || !schema->isString() ||
        schema->str != "si-campaign-v1") {
        error = "manifest schema is not si-campaign-v1";
        return false;
    }
    const json::Value *complete = root.find("complete");
    const json::Value *cells = root.find("cells");
    if (!complete || !complete->isBool() || !cells ||
        !cells->isArray()) {
        error = "manifest lacks complete/cells members";
        return false;
    }
    out = CampaignReport{};
    out.complete = complete->boolean;
    for (const json::Value &cv : cells->array) {
        CampaignCellRecord rec;
        auto need = [&](const char *key) -> const json::Value * {
            const json::Value *v = cv.find(key);
            if (!v)
                error = std::string("cell lacks '") + key + "'";
            return v;
        };
        const json::Value *wl = need("workload");
        const json::Value *cfg = need("config");
        const json::Value *state = need("state");
        const json::Value *attempts = need("attempts");
        const json::Value *kind = need("kind");
        if (!wl || !cfg || !state || !attempts || !kind)
            return false;
        rec.workload = wl->str;
        rec.configLabel = cfg->str;
        rec.state = state->str;
        rec.attempts = unsigned(attempts->number);
        rec.kind = errorKindFromName(kind->str);
        if (const json::Value *v = cv.find("detail"))
            rec.detail = v->str;
        if (const json::Value *v = cv.find("diagnosis"))
            rec.diagnosis = v->str;
        if (const json::Value *v = cv.find("cycles"))
            rec.cycles = Cycle(v->number);
        if (const json::Value *v = cv.find("checkpoint"))
            rec.checkpoint = v->str;
        out.cells.push_back(std::move(rec));
    }
    return true;
}

void
CampaignRunner::writeManifest(const CampaignReport &report) const
{
    writeFileAtomic(options_.stateDir + "/campaign.json",
                    manifestJson(report));
}

/**
 * Simulate one cell attempt: config prep, checkpoint hook, resume from
 * an earlier attempt's checkpoint when one exists, and exception
 * absorption. Shared by the forked child and the in-process mode, so
 * the two paths cannot drift in cell semantics.
 */
GpuResult
CampaignRunner::executeCell(const CampaignCellRecord &rec,
                            const Workload &workload, GpuConfig config,
                            bool &resumed)
{
    GpuResult result;
    resumed = false;
    try {
        config.rtc = workload.rtc;
        if (options_.childConfigHook)
            options_.childConfigHook(config, rec, rec.attempts);

        const std::string ckpt = checkpointPath(rec);
        if (options_.checkpointEvery) {
            config.checkpointInterval = options_.checkpointEvery;
            config.checkpointHook = [ckpt](const Gpu &gpu, Cycle) {
                SnapshotWriter w;
                gpu.save(w);
                writeSnapshotFile(ckpt, w.finish());
            };
        }

        const std::vector<KernelLaunch> kernels{
            {&workload.program, workload.launch}};

        // A checkpoint from an earlier attempt (or an earlier campaign
        // invocation) resumes the cell mid-run; a corrupt or mismatched
        // checkpoint falls back to a fresh run rather than failing the
        // cell on its own recovery mechanism.
        if (std::filesystem::exists(ckpt)) {
            try {
                const std::string data = readSnapshotFile(ckpt);
                Memory mem = *workload.memory;
                Gpu gpu(config, mem, workload.bvh());
                SnapshotReader reader(data);
                result = gpu.resumeMulti(kernels, reader);
                resumed = result.status.kind != ErrorKind::Snapshot;
            } catch (const SimError &) {
                resumed = false;
            }
        }
        if (!resumed) {
            Memory mem = *workload.memory;
            Gpu gpu(config, mem, workload.bvh());
            result = gpu.runMulti(kernels);
        }
    } catch (const SimError &e) {
        result.status = e.status();
    } catch (const std::exception &e) {
        result.status = RunStatus::failure(
            ErrorKind::Internal,
            std::string("unexpected exception: ") + e.what());
    }
    return result;
}

void
CampaignRunner::childMain(const CampaignCellRecord &rec,
                          const Workload &workload, GpuConfig config)
{
    bool resumed = false;
    const GpuResult result =
        executeCell(rec, workload, std::move(config), resumed);

    try {
        writeFileAtomic(resultPath(rec),
                        cellResultJson(rec, result, resumed));
    } catch (const std::exception &) {
        _exit(3); // parent classifies a missing result as Internal
    }
    _exit(0);
}

void
CampaignRunner::runAttempt(CampaignCellRecord &rec,
                           const Workload &workload,
                           const GpuConfig &config)
{
    using clock = std::chrono::steady_clock;

    ++rec.attempts;
    std::remove(resultPath(rec).c_str());

    const pid_t pid = fork();
    sim_throw_if(pid < 0, ErrorKind::Internal, "fork failed: %s",
                 std::strerror(errno));
    if (pid == 0)
        childMain(rec, workload, config); // never returns

    // Reap with a wall-clock deadline; a child that overruns is killed
    // outright (ChildTimeout — the parent's budget, distinct from the
    // simulator's own in-process watchdogs).
    const bool bounded = options_.cellTimeoutSec > 0;
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(
                               bounded ? options_.cellTimeoutSec : 0));
    int wstatus = 0;
    bool timed_out = false;
    while (true) {
        const pid_t r = waitpid(pid, &wstatus, bounded ? WNOHANG : 0);
        sim_throw_if(r < 0, ErrorKind::Internal, "waitpid failed: %s",
                     std::strerror(errno));
        if (r == pid)
            break;
        if (bounded && clock::now() >= deadline) {
            kill(pid, SIGKILL);
            waitpid(pid, &wstatus, 0);
            timed_out = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    if (timed_out) {
        rec.kind = ErrorKind::ChildTimeout;
        rec.detail = "cell exceeded its " +
                     std::to_string(options_.cellTimeoutSec) +
                     "s wall budget and was killed";
        return;
    }
    if (WIFSIGNALED(wstatus)) {
        rec.kind = ErrorKind::ChildCrash;
        rec.detail = "cell died on signal " +
                     std::to_string(WTERMSIG(wstatus));
        return;
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        rec.kind = ErrorKind::Internal;
        rec.detail = "cell exited with status " +
                     std::to_string(WEXITSTATUS(wstatus));
        return;
    }

    std::string text;
    if (!readFile(resultPath(rec), text)) {
        rec.kind = ErrorKind::Internal;
        rec.detail = "cell exited cleanly but left no result file";
        return;
    }
    json::ParseResult parsed = json::parse(text);
    const json::Value *kind =
        parsed.ok ? parsed.value.find("kind") : nullptr;
    if (!kind || !kind->isString()) {
        rec.kind = ErrorKind::Internal;
        rec.detail = "cell result file is malformed";
        return;
    }
    rec.kind = errorKindFromName(kind->str);
    rec.detail = "";
    if (const json::Value *v = parsed.value.find("detail"))
        rec.detail = v->str;
    rec.cycles = 0;
    if (const json::Value *v = parsed.value.find("cycles"))
        rec.cycles = Cycle(v->number);
}

void
CampaignRunner::runAttemptInProcess(CampaignCellRecord &rec,
                                    const Workload &workload,
                                    const GpuConfig &config)
{
    using clock = std::chrono::steady_clock;

    ++rec.attempts;

    GpuConfig cell_config = config;
    if (options_.cellTimeoutSec > 0) {
        // The in-process analogue of the parent's SIGKILL budget: the
        // cancel hook unwinds the run with ErrorKind::WallClock, which
        // is transient and retried exactly like ChildTimeout.
        const auto deadline =
            clock::now() + std::chrono::duration_cast<clock::duration>(
                               std::chrono::duration<double>(
                                   options_.cellTimeoutSec));
        cell_config.cancelHook = [deadline] {
            return clock::now() >= deadline;
        };
    }

    bool resumed = false;
    const GpuResult result =
        executeCell(rec, workload, std::move(cell_config), resumed);
    rec.kind = result.status.kind;
    rec.detail = result.status.ok() ? "" : result.status.message;
    rec.cycles = result.cycles;
}

void
CampaignRunner::runCellToCompletion(CampaignCellRecord &rec,
                                    const Workload &workload,
                                    const GpuConfig &config,
                                    bool in_process)
{
    while (true) {
        if (in_process)
            runAttemptInProcess(rec, workload, config);
        else
            runAttempt(rec, workload, config);
        if (rec.kind == ErrorKind::None) {
            rec.state = "done";
            rec.diagnosis = "";
            break;
        }
        const bool transient = errorKindIsTransient(
            rec.kind, options_.faultInjectionActive);
        if (!transient || rec.attempts > options_.maxRetries) {
            rec.state = "failed";
            rec.diagnosis = errorDetectorName(rec.kind);
            if (std::filesystem::exists(checkpointPath(rec)))
                rec.checkpoint = checkpointPath(rec);
            warn("campaign cell %s/%s failed permanently after %u "
                 "attempt(s): %s [%s]%s%s",
                 rec.workload.c_str(), rec.configLabel.c_str(),
                 rec.attempts, rec.detail.c_str(),
                 rec.diagnosis.c_str(),
                 rec.checkpoint.empty() ? "" : "; last checkpoint: ",
                 rec.checkpoint.c_str());
            break;
        }
        // A timeout or crash kill leaves a healthy machine's
        // checkpoint worth resuming. A detector trip (livelock,
        // invariant violation, ...) means the machine state itself
        // went bad, and auto-checkpoints from that attempt may have
        // captured the corruption — drop them so the retry starts
        // clean instead of resuming straight back into the failure.
        if (rec.kind != ErrorKind::ChildTimeout &&
            rec.kind != ErrorKind::ChildCrash &&
            rec.kind != ErrorKind::WallClock) {
            std::error_code ec;
            std::filesystem::remove(checkpointPath(rec), ec);
        }
        if (options_.retryBackoffSec > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options_.retryBackoffSec * rec.attempts));
        }
    }
    if (rec.done() && std::filesystem::exists(checkpointPath(rec)))
        rec.checkpoint = checkpointPath(rec);
}

CampaignReport
CampaignRunner::run()
{
    std::filesystem::create_directories(options_.stateDir);

    CampaignReport report;
    report.manifestPath = options_.stateDir + "/campaign.json";
    for (const Workload &wl : suite_) {
        for (const auto &[label, config] : configs_) {
            (void)config;
            CampaignCellRecord rec;
            rec.workload = wl.name;
            rec.configLabel = label;
            report.cells.push_back(std::move(rec));
        }
    }

    // A fresh (non-resuming) campaign must not inherit checkpoints or
    // results a previous campaign left in the same state directory.
    if (!options_.resume) {
        for (const CampaignCellRecord &rec : report.cells) {
            std::error_code ec;
            std::filesystem::remove(checkpointPath(rec), ec);
            std::filesystem::remove(resultPath(rec), ec);
        }
    }

    // Resume: adopt the terminal cells of a previous invocation; cells
    // left pending (including a cell the previous parent died inside)
    // re-run, picking up their last auto-checkpoint if one exists.
    if (options_.resume) {
        std::string text, error;
        CampaignReport prior;
        if (readFile(report.manifestPath, text) &&
            parseManifest(text, prior, error)) {
            for (CampaignCellRecord &rec : report.cells) {
                for (const CampaignCellRecord &old : prior.cells) {
                    if (old.workload == rec.workload &&
                        old.configLabel == rec.configLabel &&
                        (old.done() || old.failed())) {
                        rec = old;
                        break;
                    }
                }
            }
        } else if (!text.empty()) {
            warn("campaign resume: ignoring unusable manifest (%s)",
                 error.c_str());
        }
    }
    writeManifest(report);

    // Resolve the pending cells into an execution list up front so the
    // fork-serial path and the in-process pool walk the exact same
    // cells in the exact same identity order.
    struct PendingCell
    {
        std::size_t index; ///< into report.cells
        const Workload *workload;
        const GpuConfig *config;
    };
    std::vector<PendingCell> todo;
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        CampaignCellRecord &rec = report.cells[i];
        if (rec.done() || rec.failed())
            continue;
        if (options_.maxCellsThisRun &&
            todo.size() >= options_.maxCellsThisRun)
            break;

        const Workload *workload = nullptr;
        for (const Workload &wl : suite_) {
            if (wl.name == rec.workload) {
                workload = &wl;
                break;
            }
        }
        const GpuConfig *config = nullptr;
        for (const auto &[label, cfg] : configs_) {
            if (label == rec.configLabel) {
                config = &cfg;
                break;
            }
        }
        sim_throw_if(!workload || !config, ErrorKind::Internal,
                     "campaign cell '%s'/'%s' lost its definition",
                     rec.workload.c_str(), rec.configLabel.c_str());
        todo.push_back({i, workload, config});
    }

    const bool in_process = options_.inProcessJobs >= 1;
    // Workers mutate only a local copy of their record; the copy is
    // committed to the report — and the manifest rewritten, which reads
    // every cell — under one mutex, so concurrent cells never observe
    // each other half-written. Commit content is index-keyed, so the
    // final manifest is byte-identical at any worker count (the
    // *intermediate* manifests differ in completion order only).
    std::mutex commit_mutex;
    parallel::forIndexed(
        in_process ? options_.inProcessJobs : 1, todo.size(),
        [&](std::size_t k) {
            const PendingCell &cell = todo[k];
            CampaignCellRecord local = report.cells[cell.index];
            runCellToCompletion(local, *cell.workload, *cell.config,
                                in_process);
            std::lock_guard<std::mutex> lock(commit_mutex);
            report.cells[cell.index] = std::move(local);
            ++report.cellsRun;
            writeManifest(report);
        });

    report.complete = true;
    for (const CampaignCellRecord &rec : report.cells) {
        if (!rec.done() && !rec.failed()) {
            report.complete = false;
            break;
        }
    }
    writeManifest(report);
    return report;
}

} // namespace si
