#include "harness/report.hh"

#include "common/json.hh"
#include "common/stats.hh"
#include "trace/events.hh"

namespace si {

namespace {

/** "load-to-use" -> "load_to_use": stat-scalar-safe reason name. */
std::string
reasonKey(unsigned reason)
{
    std::string s = stallReasonName(StallReason(reason));
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

} // namespace

StatGroup
statsGroup(const std::string &name, const SmStats &s,
           std::uint64_t norm_cycles)
{
    const std::uint64_t norm = norm_cycles ? norm_cycles : s.cycles;
    StatGroup g(name);
    g.scalar("cycles") = s.cycles;
    g.scalar("instrs_issued") = s.instrsIssued;
    g.scalar("warps_retired") = s.warpsRetired;
    g.scalar("no_issue_cycles") = s.noIssueCycles;
    g.scalar("exposed_load_stall_cycles") = s.exposedLoadStallCycles;
    g.scalar("exposed_fetch_stall_cycles") = s.exposedFetchStallCycles;
    g.scalar("warp_scoreboard_stall_cycles") =
        s.warpScoreboardStallCycles;
    g.scalar("warp_pipe_stall_cycles") = s.warpPipeStallCycles;
    g.scalar("warp_fetch_stall_cycles") = s.warpFetchStallCycles;
    g.scalar("warp_switch_cycles") = s.warpSwitchCycles;
    g.scalar("ldg_issued") = s.ldgIssued;
    g.scalar("gmem_transactions") = s.gmemTransactions;
    g.scalar("tex_issued") = s.texIssued;
    g.scalar("rt_queries_issued") = s.rtQueriesIssued;
    g.scalar("stg_issued") = s.stgIssued;
    g.scalar("divergent_branches") = s.divergentBranches;
    g.scalar("reconvergences") = s.reconvergences;
    g.scalar("subwarp_selects") = s.subwarpSelects;
    g.scalar("subwarp_stalls") = s.subwarpStalls;
    g.scalar("subwarp_wakeups") = s.subwarpWakeups;
    g.scalar("subwarp_yields") = s.subwarpYields;
    g.scalar("tst_full_denials") = s.tstFullDenials;
    g.scalar("l1d_hits") = s.l1dHits;
    g.scalar("l1d_misses") = s.l1dMisses;
    g.scalar("l1i_hits") = s.l1iHits;
    g.scalar("l1i_misses") = s.l1iMisses;
    g.scalar("l0i_hits") = s.l0iHits;
    g.scalar("l0i_misses") = s.l0iMisses;
    g.scalar("live_warp_cycles") = s.liveWarpCycles;
    g.scalar("arb_loss_cycles") = s.arbLossCycles;
    for (unsigned k = 0; k < numStallReasons; ++k)
        g.scalar("stall_cycles_" + reasonKey(k)) =
            s.stallCyclesByReason[k];
    g.scalar("warp_cycles_subwarp_full") = s.warpCyclesSubwarpFull;
    g.scalar("warp_cycles_subwarp_partial") = s.warpCyclesSubwarpPartial;
    g.scalar("warp_cycles_subwarp_none") = s.warpCyclesSubwarpNone;

    g.formula("ipc", [&s]() {
        return s.cycles ? double(s.instrsIssued) / double(s.cycles) : 0.0;
    });
    g.formula("exposed_stall_frac", [&s, norm]() {
        return norm ? double(s.exposedLoadStallCycles) / double(norm)
                    : 0.0;
    });
    g.formula("exposed_stall_frac_divergent", [&s, norm]() {
        return norm ? s.exposedLoadStallCyclesDivergent / double(norm)
                    : 0.0;
    });
    g.formula("l1d_miss_rate", [&s]() {
        const double total = double(s.l1dHits + s.l1dMisses);
        return total > 0 ? double(s.l1dMisses) / total : 0.0;
    });
    g.formula("l0i_miss_rate", [&s]() {
        const double total = double(s.l0iHits + s.l0iMisses);
        return total > 0 ? double(s.l0iMisses) / total : 0.0;
    });
    // Zero by the warp-cycle partition identity (core/sm.hh); anything
    // else means the instrumentation lost a warp-cycle.
    g.formula("warp_cycle_residual", [&s]() {
        std::uint64_t accounted = s.instrsIssued + s.arbLossCycles;
        for (std::uint64_t v : s.stallCyclesByReason)
            accounted += v;
        return double(s.liveWarpCycles) - double(accounted);
    });
    return g;
}

std::string
statsReport(const std::string &name, const SmStats &s,
            std::uint64_t norm_cycles)
{
    return statsGroup(name, s, norm_cycles).dump();
}

std::string
statsReport(const GpuResult &result)
{
    std::string out =
        statsReport("gpu", result.total, result.smCycleSum());
    for (std::size_t i = 0; i < result.perSm.size(); ++i)
        out += statsReport("sm" + std::to_string(i), result.perSm[i]);
    return out;
}

std::string
statsJson(const GpuResult &result, const std::string &kernel,
          const StatsJsonOptions &options)
{
    json::Writer w;
    w.beginObject();
    w.key("schema").value("si-stats-v1");
    if (!kernel.empty())
        w.key("kernel").value(kernel);
    w.key("ok").value(result.ok());
    w.key("status").value(result.status.ok() ? "ok"
                                             : result.status.summary());
    w.key("cycles").value(std::uint64_t(result.cycles));
    w.key("groups").beginArray();
    w.raw(statsGroup("gpu", result.total, result.smCycleSum()).dumpJson());
    for (std::size_t i = 0; i < result.perSm.size(); ++i) {
        w.raw(statsGroup("sm" + std::to_string(i), result.perSm[i])
                  .dumpJson());
    }
    w.endArray();
    // Aggregate per-region warp-cycle partition (swprof --diff input).
    w.key("regions").beginArray();
    for (std::size_t i = 0; i < result.total.regions.size(); ++i) {
        const RegionCounters &rc = result.total.regions[i];
        w.beginObject();
        w.key("name").value(i < options.regionNames.size()
                                ? options.regionNames[i]
                                : "region" + std::to_string(i));
        w.key("warp_cycles").value(rc.warpCycles);
        w.key("instrs_issued").value(rc.instrsIssued);
        w.key("arb_loss_cycles").value(rc.arbLossCycles);
        w.key("stall_cycles").beginObject();
        for (unsigned k = 0; k < numStallReasons; ++k)
            w.key(stallReasonName(StallReason(k)))
                .value(rc.stallCyclesByReason[k]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    if (options.includeTrace) {
        w.key("trace").beginObject();
        w.key("recorded").value(options.traceRecorded);
        w.key("dropped").value(options.traceDropped);
        w.endObject();
    }
    w.endObject();
    return w.take();
}

} // namespace si
