/**
 * @file
 * Human-readable statistics reports built on the stats package:
 * renders a GpuResult as a gem5-style "stat value" listing, per SM and
 * aggregated.
 */

#ifndef SI_HARNESS_REPORT_HH
#define SI_HARNESS_REPORT_HH

#include <string>

#include "core/gpu.hh"

namespace si {

/**
 * Render every counter of @p stats under the group name @p name.
 * @p norm_cycles overrides the denominator of the fraction formulas
 * (needed for aggregates, whose counters sum over SMs while cycles is
 * the max); 0 uses stats.cycles.
 */
std::string statsReport(const std::string &name, const SmStats &stats,
                        std::uint64_t norm_cycles = 0);

/** Render the aggregate and per-SM statistics of a run. */
std::string statsReport(const GpuResult &result);

} // namespace si

#endif // SI_HARNESS_REPORT_HH
