/**
 * @file
 * Human-readable statistics reports built on the stats package:
 * renders a GpuResult as a gem5-style "stat value" listing, per SM and
 * aggregated.
 */

#ifndef SI_HARNESS_REPORT_HH
#define SI_HARNESS_REPORT_HH

#include <string>

#include "common/stats.hh"
#include "core/gpu.hh"

namespace si {

/**
 * Build the StatGroup for @p stats under the group name @p name — the
 * single registration point behind both the text and JSON renderers.
 * @p norm_cycles overrides the denominator of the fraction formulas
 * (needed for aggregates, whose counters sum over SMs while cycles is
 * the max); 0 uses stats.cycles. The formulas reference @p stats, which
 * must outlive the returned group.
 */
StatGroup statsGroup(const std::string &name, const SmStats &stats,
                     std::uint64_t norm_cycles = 0);

/**
 * Render every counter of @p stats under the group name @p name.
 * @p norm_cycles overrides the denominator of the fraction formulas
 * (needed for aggregates, whose counters sum over SMs while cycles is
 * the max); 0 uses stats.cycles.
 */
std::string statsReport(const std::string &name, const SmStats &stats,
                        std::uint64_t norm_cycles = 0);

/** Render the aggregate and per-SM statistics of a run. */
std::string statsReport(const GpuResult &result);

/** Optional extras attached to an si-stats-v1 document. */
struct StatsJsonOptions
{
    /**
     * Region-name table (Program::regionNames()) labelling the
     * aggregate per-region counters in the top-level "regions" array;
     * indices beyond the table fall back to "region<i>".
     */
    std::vector<std::string> regionNames;

    /** When true, emit a "trace" object with the sink's drop stats. */
    bool includeTrace = false;
    std::uint64_t traceRecorded = 0;
    std::uint64_t traceDropped = 0;
};

/**
 * Machine-readable run statistics ("si-stats-v1"): run status, cycles,
 * one StatGroup JSON object per group (aggregate "gpu" first, then
 * per-SM), and the aggregate per-region warp-cycle partition, all with
 * stable key order. swsim --stats-json emits this.
 */
std::string statsJson(const GpuResult &result,
                      const std::string &kernel = "",
                      const StatsJsonOptions &options = {});

} // namespace si

#endif // SI_HARNESS_REPORT_HH
