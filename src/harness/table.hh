/**
 * @file
 * TablePrinter: aligned text tables for the benchmark harness, so each
 * bench binary prints the same rows/series the paper's tables and
 * figures report.
 */

#ifndef SI_HARNESS_TABLE_HH
#define SI_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace si {

/** Build and render a fixed-column text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title);

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> columns);

    /** Append a row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Format helper: fixed-point with @p decimals digits. */
    static std::string num(double value, int decimals = 2);

    /** Format helper: "x.y%" percentage. */
    static std::string pct(double value, int decimals = 1);

    /** Render the table. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /**
     * Machine-readable form: {"title":...,"columns":[...],"rows":[[...]]}
     * with cells as strings, exactly as rendered. Bench binaries embed
     * this in their --json output.
     */
    std::string json() const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace si

#endif // SI_HARNESS_TABLE_HH
