#include "harness/runner.hh"

#include "common/log.hh"

namespace si {

const std::vector<SiConfigPoint> &
siConfigPoints()
{
    static const std::vector<SiConfigPoint> points = {
        {"SOS,N=1", false, SelectTrigger::AllStalled},
        {"Both,N=1", true, SelectTrigger::AllStalled},
        {"SOS,N>=0.5", false, SelectTrigger::HalfStalled},
        {"Both,N>=0.5", true, SelectTrigger::HalfStalled},
        {"SOS,N>0", false, SelectTrigger::AnyStalled},
        {"Both,N>0", true, SelectTrigger::AnyStalled},
    };
    return points;
}

const SiConfigPoint &
bestSiConfigPoint()
{
    return siConfigPoints()[3]; // Both, N >= 0.5
}

GpuConfig
baselineConfig()
{
    return GpuConfig{};
}

GpuConfig
baselineConfig(Cycle l1_miss_latency)
{
    GpuConfig config;
    config.lat.l1Miss = l1_miss_latency;
    return config;
}

GpuConfig
withSi(GpuConfig config, const SiConfigPoint &point)
{
    config.siEnabled = true;
    config.yieldEnabled = point.yield;
    config.trigger = point.trigger;
    return config;
}

GpuConfig
withDws(GpuConfig config)
{
    config.siEnabled = true;
    config.dwsEnabled = true;
    config.yieldEnabled = false;
    config.trigger = SelectTrigger::AnyStalled;
    config.maxSubwarps = 32; // slot availability is the real limit
    config.switchLatency = 0; // splits live in their own warp slots
    return config;
}

GpuResult
runWorkload(const Workload &workload, GpuConfig config)
{
    panic_if(!workload.memory, "workload '%s' has no memory image",
             workload.name.c_str());
    config.rtc = workload.rtc;
    Memory mem = *workload.memory; // fresh copy per run
    return simulate(config, mem, workload.program, workload.launch,
                    workload.bvh());
}

double
speedupPct(const GpuResult &base, const GpuResult &test)
{
    if (test.cycles == 0)
        return 0.0;
    return (double(base.cycles) / double(test.cycles) - 1.0) * 100.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

} // namespace si
