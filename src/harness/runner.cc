#include "harness/runner.hh"

#include <chrono>
#include <exception>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "parallel/executor.hh"

namespace si {

const std::vector<SiConfigPoint> &
siConfigPoints()
{
    static const std::vector<SiConfigPoint> points = {
        {"SOS,N=1", false, SelectTrigger::AllStalled},
        {"Both,N=1", true, SelectTrigger::AllStalled},
        {"SOS,N>=0.5", false, SelectTrigger::HalfStalled},
        {"Both,N>=0.5", true, SelectTrigger::HalfStalled},
        {"SOS,N>0", false, SelectTrigger::AnyStalled},
        {"Both,N>0", true, SelectTrigger::AnyStalled},
    };
    return points;
}

const SiConfigPoint &
bestSiConfigPoint()
{
    return siConfigPoints()[3]; // Both, N >= 0.5
}

GpuConfig
baselineConfig()
{
    return GpuConfig{};
}

GpuConfig
baselineConfig(Cycle l1_miss_latency)
{
    GpuConfig config;
    config.lat.l1Miss = l1_miss_latency;
    return config;
}

GpuConfig
withSi(GpuConfig config, const SiConfigPoint &point)
{
    config.siEnabled = true;
    config.yieldEnabled = point.yield;
    config.trigger = point.trigger;
    return config;
}

GpuConfig
withDws(GpuConfig config)
{
    config.siEnabled = true;
    config.dwsEnabled = true;
    config.yieldEnabled = false;
    config.trigger = SelectTrigger::AnyStalled;
    config.maxSubwarps = 32; // slot availability is the real limit
    config.switchLatency = 0; // splits live in their own warp slots
    return config;
}

GpuResult
runWorkload(const Workload &workload, GpuConfig config)
{
    sim_throw_if(!workload.memory, ErrorKind::Config,
                 "workload '%s' has no memory image",
                 workload.name.c_str());
    config.rtc = workload.rtc;
    Memory mem = *workload.memory; // fresh copy per run
    return simulate(config, mem, workload.program, workload.launch,
                    workload.bvh());
}

RunOutcome
runWorkloadSafe(const Workload &workload, GpuConfig config,
                double wall_timeout_sec)
{
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    if (wall_timeout_sec > 0) {
        const auto deadline =
            start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(wall_timeout_sec));
        config.cancelHook = [deadline] {
            return clock::now() >= deadline;
        };
    }

    RunOutcome outcome;
    outcome.name = workload.name;
    try {
        outcome.result = runWorkload(workload, std::move(config));
    } catch (const SimError &e) {
        // simulate() absorbs run-time SimErrors; this catches the
        // pre-run ones (e.g. a workload with no memory image).
        outcome.result.status = e.status();
    } catch (const std::exception &e) {
        outcome.result.status = RunStatus::failure(
            ErrorKind::Internal,
            std::string("unexpected exception: ") + e.what());
    }
    outcome.wallSeconds =
        std::chrono::duration<double>(clock::now() - start).count();
    return outcome;
}

std::vector<RunOutcome>
runSuiteSafe(const std::vector<Workload> &suite, const GpuConfig &config,
             double per_run_timeout_sec, unsigned jobs)
{
    return parallel::mapIndexed<RunOutcome>(
        jobs, suite.size(),
        [&](std::size_t i) {
            return runWorkloadSafe(suite[i], config,
                                   per_run_timeout_sec);
        },
        [](std::size_t, const RunOutcome &o) {
            if (!o.ok()) {
                // Name the detector explicitly: a wall-clock budget
                // kill and a forward-progress watchdog trip used to
                // read identically here, sending people to debug the
                // wrong mechanism.
                warn("workload '%s' failed (%s; flagged by %s); "
                     "continuing sweep",
                     o.name.c_str(), o.result.status.summary().c_str(),
                     errorDetectorName(o.result.status.kind));
            }
        });
}

double
speedupPct(const GpuResult &base, const GpuResult &test)
{
    if (test.cycles == 0)
        return 0.0;
    return (double(base.cycles) / double(test.cycles) - 1.0) * 100.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

} // namespace si
