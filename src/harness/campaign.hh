/**
 * @file
 * Crash-resumable campaign runner. A campaign is the cross product of a
 * workload suite and a set of named configurations; each cell runs in a
 * forked child process so that a crash, livelock, or runaway cell can
 * never take the parent down. The parent enforces a wall-clock budget
 * per cell (SIGKILL on overrun), retries transiently-failed cells with
 * backoff, and rewrites a resumable JSON manifest ("si-campaign-v1")
 * after every cell, so a campaign killed at any instant — parent
 * included — resumes with --resume and finishes with the same report an
 * uninterrupted campaign produces.
 *
 * Graceful degradation: a cell that exhausts its retries is recorded as
 * failed with the detector that flagged it (errorDetectorName) and the
 * path of its last auto-checkpoint, so a human can resume and diagnose
 * that exact machine state offline.
 */

#ifndef SI_HARNESS_CAMPAIGN_HH
#define SI_HARNESS_CAMPAIGN_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace si {

/** Durable record of one campaign cell (workload x configuration). */
struct CampaignCellRecord
{
    std::string workload;
    std::string configLabel;

    /** "pending" | "done" | "failed". */
    std::string state = "pending";

    /** Child processes launched for this cell so far. */
    unsigned attempts = 0;

    /** Final (or latest) classification. */
    ErrorKind kind = ErrorKind::None;

    /** Status message of the last attempt ("" when ok). */
    std::string detail;

    /** Which detector flagged the failure ("" when ok). */
    std::string diagnosis;

    /** Kernel runtime of the successful run (0 otherwise). */
    Cycle cycles = 0;

    /** Last auto-checkpoint the cell wrote ("" when none exists). */
    std::string checkpoint;

    bool done() const { return state == "done"; }
    bool failed() const { return state == "failed"; }
};

/** Campaign policy knobs. */
struct CampaignOptions
{
    /** Directory for the manifest, per-cell results, and checkpoints. */
    std::string stateDir = "campaign-state";

    /** Wall-clock budget per child attempt; 0 = unlimited. */
    double cellTimeoutSec = 0;

    /** Retries after the first attempt of a transiently-failed cell. */
    unsigned maxRetries = 2;

    /** Base backoff between retries (scaled linearly by attempt). */
    double retryBackoffSec = 0;

    /** Auto-checkpoint period in cycles inside each child; 0 = off. */
    std::uint64_t checkpointEvery = 0;

    /** Adopt done/failed cells from an existing manifest and continue. */
    bool resume = false;

    /** Stop after this many cells have executed (0 = no cap). Used to
     *  force a mid-campaign restart in soak tests. */
    unsigned maxCellsThisRun = 0;

    /** Widens the transient classification (errorKindIsTransient): a
     *  livelock under fault injection is the injector working, so it
     *  earns a retry instead of a permanent failure. */
    bool faultInjectionActive = false;

    /**
     * In-process execution mode: 0 (default) keeps the fork-per-cell
     * path; N >= 1 runs cells on an in-process thread pool with N
     * workers instead of forking. Cells keep their retry/backoff,
     * checkpoint-resume, and classification semantics (a wall-budget
     * overrun is ErrorKind::WallClock here — the cancel hook, not a
     * SIGKILL), results are committed in deterministic cell order, and
     * the final manifest is byte-identical at any worker count. The
     * trade: a cell that outright crashes the process (panic/segfault)
     * is not isolated — prefer the fork path for untrusted cells.
     */
    unsigned inProcessJobs = 0;

    /**
     * Child-side config mutation, applied after the cell's base config
     * and before the machine is built. The chaos tests use it to plant
     * in-child fault hooks (e.g. SIGKILL at a seeded cycle).
     */
    std::function<void(GpuConfig &, const CampaignCellRecord &,
                       unsigned attempt)>
        childConfigHook;
};

/** Outcome of one CampaignRunner::run() invocation. */
struct CampaignReport
{
    std::vector<CampaignCellRecord> cells;

    /** True when no cell is left pending. */
    bool complete = false;

    /** Cells executed (not adopted/skipped) by this invocation. */
    unsigned cellsRun = 0;

    /** Where the manifest lives. */
    std::string manifestPath;

    unsigned
    numDone() const
    {
        unsigned n = 0;
        for (const auto &c : cells)
            n += c.done() ? 1 : 0;
        return n;
    }

    unsigned
    numFailed() const
    {
        unsigned n = 0;
        for (const auto &c : cells)
            n += c.failed() ? 1 : 0;
        return n;
    }
};

/**
 * The runner. Construct with the suite and the named configurations,
 * then call run() — repeatedly, across process restarts, with
 * options.resume = true — until the report says complete.
 */
class CampaignRunner
{
  public:
    CampaignRunner(std::vector<Workload> suite,
                   std::vector<std::pair<std::string, GpuConfig>> configs,
                   CampaignOptions options);

    /** Execute (or continue) the campaign. */
    CampaignReport run();

    /** Serialize a report as an "si-campaign-v1" manifest document. */
    static std::string manifestJson(const CampaignReport &report);

    /**
     * Parse an "si-campaign-v1" manifest. @return false (with
     * @p error set) when the document is malformed.
     */
    static bool parseManifest(const std::string &text,
                              CampaignReport &out, std::string &error);

  private:
    /** Run one attempt of @p rec in a forked child; classify it. */
    void runAttempt(CampaignCellRecord &rec, const Workload &workload,
                    const GpuConfig &config);

    /** In-process attempt: same cell semantics, no fork. */
    void runAttemptInProcess(CampaignCellRecord &rec,
                             const Workload &workload,
                             const GpuConfig &config);

    /** Drive @p rec through attempts/retries to a terminal state. */
    void runCellToCompletion(CampaignCellRecord &rec,
                             const Workload &workload,
                             const GpuConfig &config, bool in_process);

    /** Shared cell-simulation core behind both attempt paths. */
    GpuResult executeCell(const CampaignCellRecord &rec,
                          const Workload &workload, GpuConfig config,
                          bool &resumed);

    /** Never returns: simulate the cell, write its result, _exit. */
    [[noreturn]] void childMain(const CampaignCellRecord &rec,
                                const Workload &workload,
                                GpuConfig config);

    std::string cellStem(const CampaignCellRecord &rec) const;
    std::string checkpointPath(const CampaignCellRecord &rec) const;
    std::string resultPath(const CampaignCellRecord &rec) const;
    void writeManifest(const CampaignReport &report) const;

    std::vector<Workload> suite_;
    std::vector<std::pair<std::string, GpuConfig>> configs_;
    CampaignOptions options_;
};

} // namespace si

#endif // SI_HARNESS_CAMPAIGN_HH
