/**
 * @file
 * Experiment runner: applies a GPU configuration to a Workload (with a
 * fresh copy of its memory image), and enumerates the paper's six SI
 * configurations ({SOS, Both} x {N=1, N>=0.5, N>0}) plus helpers for
 * speedups and means.
 */

#ifndef SI_HARNESS_RUNNER_HH
#define SI_HARNESS_RUNNER_HH

#include <string>
#include <vector>

#include "rt/workload.hh"

namespace si {

/** One point in the paper's SI configuration sweep (Figure 12a). */
struct SiConfigPoint
{
    const char *label; ///< e.g. "Both,N>=0.5"
    bool yield;        ///< false = SOS (switch-on-stall only)
    SelectTrigger trigger;
};

/** The six configurations of Figure 12a/13, in the paper's order. */
const std::vector<SiConfigPoint> &siConfigPoints();

/** The single best setting the paper reports (Both, N >= 0.5). */
const SiConfigPoint &bestSiConfigPoint();

/** The paper's Turing-like baseline configuration (Table I). */
GpuConfig baselineConfig();

/** Baseline config at a given L1 miss latency. */
GpuConfig baselineConfig(Cycle l1_miss_latency);

/** Apply an SI point to a baseline config. */
GpuConfig withSi(GpuConfig config, const SiConfigPoint &point);

/**
 * Dynamic Warp Subdivision comparator config (Related Work VII-B):
 * stall-point interleaving gated by free warp slots instead of a TST,
 * with no subwarp switch latency.
 */
GpuConfig withDws(GpuConfig config);

/**
 * Simulate @p workload under @p config. The workload's memory image is
 * copied and its RT-core parameters are installed, so repeated runs are
 * independent and deterministic.
 */
GpuResult runWorkload(const Workload &workload, GpuConfig config);

/** Percent speedup of @p test over @p base (positive = faster). */
double speedupPct(const GpuResult &base, const GpuResult &test);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

} // namespace si

#endif // SI_HARNESS_RUNNER_HH
