/**
 * @file
 * Experiment runner: applies a GPU configuration to a Workload (with a
 * fresh copy of its memory image), and enumerates the paper's six SI
 * configurations ({SOS, Both} x {N=1, N>=0.5, N>0}) plus helpers for
 * speedups and means.
 */

#ifndef SI_HARNESS_RUNNER_HH
#define SI_HARNESS_RUNNER_HH

#include <string>
#include <vector>

#include "rt/workload.hh"

namespace si {

/** One point in the paper's SI configuration sweep (Figure 12a). */
struct SiConfigPoint
{
    const char *label; ///< e.g. "Both,N>=0.5"
    bool yield;        ///< false = SOS (switch-on-stall only)
    SelectTrigger trigger;
};

/** The six configurations of Figure 12a/13, in the paper's order. */
const std::vector<SiConfigPoint> &siConfigPoints();

/** The single best setting the paper reports (Both, N >= 0.5). */
const SiConfigPoint &bestSiConfigPoint();

/** The paper's Turing-like baseline configuration (Table I). */
GpuConfig baselineConfig();

/** Baseline config at a given L1 miss latency. */
GpuConfig baselineConfig(Cycle l1_miss_latency);

/** Apply an SI point to a baseline config. */
GpuConfig withSi(GpuConfig config, const SiConfigPoint &point);

/**
 * Dynamic Warp Subdivision comparator config (Related Work VII-B):
 * stall-point interleaving gated by free warp slots instead of a TST,
 * with no subwarp switch latency.
 */
GpuConfig withDws(GpuConfig config);

/**
 * Simulate @p workload under @p config. The workload's memory image is
 * copied and its RT-core parameters are installed, so repeated runs are
 * independent and deterministic.
 */
GpuResult runWorkload(const Workload &workload, GpuConfig config);

/** One sweep point from the fault-tolerant runners. */
struct RunOutcome
{
    std::string name;   ///< workload name
    GpuResult result;   ///< status + whatever statistics accumulated
    double wallSeconds = 0;

    bool ok() const { return result.ok(); }
};

/**
 * Like runWorkload(), but never aborts the process and never lets an
 * exception escape: simulator errors (deadlock, livelock, invariant
 * violations, bad configs) come back classified in the outcome's
 * GpuResult::status. A nonzero @p wall_timeout_sec installs a
 * cancellation hook that fails the run with ErrorKind::WallClock once
 * the budget is spent.
 */
RunOutcome runWorkloadSafe(const Workload &workload, GpuConfig config,
                           double wall_timeout_sec = 0);

/**
 * Sweep @p suite under @p config with skip-and-record semantics: a
 * workload that deadlocks, livelocks, or exceeds @p per_run_timeout_sec
 * is recorded as failed and the sweep moves on, so one sick kernel
 * cannot take down the table for the healthy ones.
 *
 * @p jobs workloads run concurrently (1 = the serial path, 0 = all
 * cores). Results are collected by suite index and failure warnings are
 * emitted in suite order, so the outcome vector and the log stream are
 * byte-identical at any jobs value.
 */
std::vector<RunOutcome> runSuiteSafe(const std::vector<Workload> &suite,
                                     const GpuConfig &config,
                                     double per_run_timeout_sec = 0,
                                     unsigned jobs = 1);

/** Percent speedup of @p test over @p base (positive = faster). */
double speedupPct(const GpuResult &base, const GpuResult &test);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

} // namespace si

#endif // SI_HARNESS_RUNNER_HH
